// Machine-readable stats export: one JSON schema shared by every tool
// that reports simulation results (sttsim, sttexp, sttreport), so
// downstream analysis scripts parse one format instead of scraping
// printf tables. The schema is versioned and pinned by a golden test;
// additions bump the minor shape (new optional fields), removals or
// renames bump the version string.
package sim

import (
	"encoding/json"
	"io"

	"sttllc/internal/metrics"
	"sttllc/internal/power"
)

// StatsSchema identifies the dump format. Consumers should reject
// dumps whose schema string they don't recognize.
const StatsSchema = "sttllc-stats/v1"

// StatsSchemaV2 marks dumps of multi-tier hierarchies: v1 plus a
// trailing "tiers" array with per-level roll-ups. Two-level runs keep
// emitting v1 byte-identically, so existing consumers and goldens are
// untouched.
const StatsSchemaV2 = "sttllc-stats/v2"

// StatsDump is the machine-readable form of one run's Result, plus
// whatever the run's metrics registry collected.
type StatsDump struct {
	Schema    string `json:"schema"`
	Config    string `json:"config"`
	Benchmark string `json:"benchmark"`

	Cycles        int64   `json:"cycles"`
	Instructions  uint64  `json:"instructions"`
	IPC           float64 `json:"ipc"`
	ResidentWarps int     `json:"resident_warps"`

	L2    L2Dump    `json:"l2"`
	Power PowerDump `json:"power"`

	// Counters is the registry's scalar snapshot (empty without an
	// enabled registry). Go marshals map keys sorted, so the encoding
	// is deterministic.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Histograms are the registry's bucket snapshots, sorted by name.
	Histograms []HistogramDump `json:"histograms,omitempty"`

	// Tiers is the per-level hierarchy roll-up (schema v2 only; absent
	// from two-level runs so v1 dumps stay byte-identical).
	Tiers []TierDump `json:"tiers,omitempty"`
}

// TierDump is one hierarchy level's roll-up across all banks.
type TierDump struct {
	Level          string  `json:"level"`
	Kind           string  `json:"kind"`
	Reads          uint64  `json:"reads"`
	Writes         uint64  `json:"writes"`
	HitRate        float64 `json:"hit_rate"`
	DynamicEnergyJ float64 `json:"dynamic_energy_j"`
	LeakageW       float64 `json:"leakage_w"`
}

// L2Dump carries the merged bank counters and the derived rates the
// paper's figures are built from.
type L2Dump struct {
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`

	HitRate float64 `json:"hit_rate"`
	// LRHitRate is the share of all bank accesses served by the LR
	// part; LRWriteShare is Fig. 5's LR write utilization.
	LRHitRate    float64 `json:"lr_hit_rate"`
	LRWriteShare float64 `json:"lr_write_share"`

	MigrationsToLR      uint64 `json:"migrations_to_lr"`
	EvictionsToHR       uint64 `json:"evictions_to_hr"`
	Refreshes           uint64 `json:"refreshes"`
	LRExpiryDrops       uint64 `json:"lr_expiry_drops"`
	HRExpiries          uint64 `json:"hr_expiries"`
	SwapBufferOverflows uint64 `json:"swap_buffer_overflows"`
	DRAMFills           uint64 `json:"dram_fills"`
	DRAMWritebacks      uint64 `json:"dram_writebacks"`

	// RewriteIntervalsUS is the Fig. 6 histogram (microsecond edges).
	RewriteIntervalsUS *FloatHistogramDump `json:"rewrite_intervals_us,omitempty"`
}

// PowerDump is the L2 power breakdown (Fig. 8b/8c inputs).
type PowerDump struct {
	DynamicEnergyJ float64            `json:"dynamic_energy_j"`
	DynamicW       float64            `json:"dynamic_w"`
	LeakageW       float64            `json:"leakage_w"`
	TotalW         float64            `json:"total_w"`
	Seconds        float64            `json:"seconds"`
	ComponentsJ    map[string]float64 `json:"components_j"`
}

// HistogramDump is one integer-edged registry histogram.
type HistogramDump struct {
	Name     string   `json:"name"`
	Edges    []int64  `json:"edges"`
	Counts   []uint64 `json:"counts"`
	Overflow uint64   `json:"overflow"`
}

// FloatHistogramDump is a float-edged histogram (rewrite intervals).
type FloatHistogramDump struct {
	Edges    []float64 `json:"edges"`
	Counts   []uint64  `json:"counts"`
	Overflow uint64    `json:"overflow"`
}

// Dump converts the result alone; DumpStats also folds in a registry.
func (r Result) Dump() StatsDump {
	d := StatsDump{
		Schema:        StatsSchema,
		Config:        r.Config,
		Benchmark:     r.Benchmark,
		Cycles:        r.Cycles,
		Instructions:  r.Instructions,
		IPC:           r.IPC,
		ResidentWarps: r.ResidentWarps,
	}
	b := &r.Bank
	d.L2 = L2Dump{
		Reads:               b.Reads,
		Writes:              b.Writes,
		HitRate:             b.HitRate(),
		LRWriteShare:        b.LRWriteShare(),
		MigrationsToLR:      b.MigrationsToLR,
		EvictionsToHR:       b.EvictionsToHR,
		Refreshes:           b.Refreshes,
		LRExpiryDrops:       b.LRExpiryDrops,
		HRExpiries:          b.HRExpiries,
		SwapBufferOverflows: b.OverflowWritebacks,
		DRAMFills:           b.DRAMFills,
		DRAMWritebacks:      b.DRAMWritebacks,
	}
	if total := b.Reads + b.Writes; total > 0 {
		d.L2.LRHitRate = float64(b.LRReadHits+b.LRWriteHits) / float64(total)
	}
	if h := b.RewriteIntervals; h != nil && h.N > 0 {
		d.L2.RewriteIntervalsUS = &FloatHistogramDump{
			Edges:    append([]float64(nil), h.Edges...),
			Counts:   append([]uint64(nil), h.Counts...),
			Overflow: h.Overflow,
		}
	}
	comp := make(map[string]float64)
	for _, c := range power.Components() {
		comp[c.String()] = r.Power.EnergyJ[c]
	}
	d.Power = PowerDump{
		DynamicEnergyJ: r.Power.DynamicEnergyJ(),
		DynamicW:       r.Power.DynamicW(),
		LeakageW:       r.Power.LeakageW,
		TotalW:         r.Power.TotalW(),
		Seconds:        r.Power.Seconds,
		ComponentsJ:    comp,
	}
	for _, t := range r.Tiers {
		d.Schema = StatsSchemaV2
		d.Tiers = append(d.Tiers, TierDump{
			Level:          t.Level,
			Kind:           t.Kind,
			Reads:          t.Reads,
			Writes:         t.Writes,
			HitRate:        t.HitRate,
			DynamicEnergyJ: t.DynamicEnergyJ,
			LeakageW:       t.LeakageW,
		})
	}
	return d
}

// DumpStats converts a result and folds in the registry's counters and
// histograms. A nil or disabled registry contributes nothing.
func DumpStats(r Result, reg *metrics.Registry) StatsDump {
	d := r.Dump()
	if reg == nil {
		return d
	}
	d.Counters = reg.Map()
	for _, h := range reg.Histograms() {
		d.Histograms = append(d.Histograms, HistogramDump{
			Name:     h.Name,
			Edges:    h.Edges,
			Counts:   h.Counts,
			Overflow: h.Overflow,
		})
	}
	return d
}

// WriteJSON serializes the dump, indented, with a trailing newline.
func (d StatsDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteStatsDumps serializes a list of dumps as one JSON array — the
// multi-run form sttexp and sttreport emit.
func WriteStatsDumps(w io.Writer, dumps []StatsDump) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dumps)
}
