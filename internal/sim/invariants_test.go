package sim

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"sttllc/internal/config"
	"sttllc/internal/core"
	"sttllc/internal/refmodel"
)

var invariants = flag.Bool("invariants", true,
	"audit live bank state with internal/refmodel's invariant checker during every simulation test")

// TestMain installs the refmodel invariant checker as the package-wide
// default, so every simulation this package runs — golden tests,
// integration tests, replay tests — audits bank state at each retention
// tick and at drain. Disable with -invariants=false when bisecting an
// unrelated failure.
func TestMain(m *testing.M) {
	flag.Parse()
	if *invariants {
		defaultInvariantCheck = func(bank int, b core.Bank, now int64) error {
			return refmodel.CheckBank(b, now)
		}
	}
	os.Exit(m.Run())
}

// TestInvariantCheckHookFires pins that the audit hook actually runs:
// on ticks during the run and once per bank at finalize.
func TestInvariantCheckHookFires(t *testing.T) {
	calls := 0
	cfg := config.C2()
	res := RunOne(cfg, exportSpec(t), Options{
		InvariantCheck: func(bank int, b core.Bank, now int64) error {
			calls++
			return refmodel.CheckBank(b, now)
		},
	})
	if calls < cfg.NumBanks {
		t.Fatalf("invariant check ran %d times, want at least one per bank (%d)", calls, cfg.NumBanks)
	}
	if res.Instructions == 0 {
		t.Fatal("workload ran no instructions")
	}
}

// TestInvariantViolationPanics pins the failure mode: a checker error
// must abort the run loudly, not be swallowed.
func TestInvariantViolationPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("violation did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "invariant violated") {
			t.Fatalf("panic message %q does not identify the violation", msg)
		}
	}()
	RunOne(config.C2(), exportSpec(t), Options{
		InvariantCheck: func(bank int, b core.Bank, now int64) error {
			return fmt.Errorf("synthetic violation for test")
		},
	})
}
