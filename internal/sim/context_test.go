package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"sttllc/internal/config"
	"sttllc/internal/workloads"
)

// bigSpec returns a workload large enough that a run takes (at least)
// hundreds of milliseconds of wall time, so a mid-run cancellation
// reliably lands while the drive loop is still visiting cycles.
func bigSpec(t *testing.T) workloads.Spec {
	t.Helper()
	s, ok := workloads.ByName("bfs")
	if !ok {
		t.Fatal("unknown benchmark bfs")
	}
	return s.Scale(50)
}

func TestRunContextCompletesWithBackground(t *testing.T) {
	cfg, _ := config.ByName("C2")
	spec := tinySpec(t, "bfs")
	want := RunOne(cfg, spec, Options{})
	got, err := RunOneContext(context.Background(), cfg, spec, Options{})
	if err != nil {
		t.Fatalf("RunOneContext: unexpected error %v", err)
	}
	// A background context must not perturb the simulation: same event
	// sequence, same result.
	if got.Cycles != want.Cycles || got.Instructions != want.Instructions || got.IPC != want.IPC {
		t.Errorf("RunOneContext(Background) = cycles %d instr %d, Run = cycles %d instr %d",
			got.Cycles, got.Instructions, want.Cycles, want.Instructions)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	cfg, _ := config.ByName("C2")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := RunOneContext(ctx, cfg, tinySpec(t, "bfs"), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r.Cycles != 0 {
		t.Errorf("pre-cancelled run reported %d cycles, want 0", r.Cycles)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	cfg, _ := config.ByName("C2")
	spec := bigSpec(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	r, err := RunOneContext(ctx, cfg, spec, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (run finished in %v — spec too small?)",
			err, time.Since(start))
	}
	if r.Cycles <= 0 {
		t.Errorf("cancelled mid-run but Cycles = %d, want > 0 (partial progress)", r.Cycles)
	}
	// The partial result must still be internally consistent: the drain
	// and power accounting ran.
	if r.Instructions == 0 {
		t.Errorf("cancelled run reports zero instructions; expected partial progress")
	}
	if r.Seconds <= 0 {
		t.Errorf("Seconds = %v, want > 0", r.Seconds)
	}
}

func TestRunContextDeadline(t *testing.T) {
	cfg, _ := config.ByName("C1")
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, err := RunOneContext(ctx, cfg, bigSpec(t), Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextCancelOnSRAMBaseline pins the poll fallback: SRAM banks
// have no retention tick (TickPeriod 0), so cancellation must ride the
// default poll cadence instead of never being checked.
func TestRunContextCancelOnSRAMBaseline(t *testing.T) {
	cfg, _ := config.ByName("baseline-SRAM")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := RunOneContext(ctx, cfg, bigSpec(t), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunAppContextCancelStopsKernels(t *testing.T) {
	cfg, _ := config.ByName("C2")
	apps := workloads.Apps()
	if len(apps) == 0 {
		t.Skip("no applications defined")
	}
	app := apps[0]
	// Scale the kernels up so the first one outlives the cancel.
	for i := range app.Kernels {
		app.Kernels[i] = app.Kernels[i].Scale(50)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	ar, err := RunAppContext(ctx, cfg, app, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ar.Kernels) == 0 {
		t.Fatalf("cancelled app reports no kernel rows, want the interrupted kernel's partial row")
	}
	if len(ar.Kernels) == len(app.Kernels) && ar.Kernels[len(ar.Kernels)-1].EndCycle == 0 {
		t.Errorf("all kernels reported despite cancellation")
	}
}
