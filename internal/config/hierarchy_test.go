package config

import (
	"strings"
	"testing"

	"sttllc/internal/core"
)

func TestExtendedNamesRoundTrip(t *testing.T) {
	ext := Extended()
	if len(ext) != 8 {
		t.Fatalf("Extended() = %d configs, want 8 (paper's 5 + 2 stacked + C4)", len(ext))
	}
	for _, g := range ext {
		got, ok := ByName(g.Name)
		if !ok {
			t.Errorf("ByName(%q) failed for an Extended() config", g.Name)
			continue
		}
		if got.Name != g.Name || got.L3 != g.L3 {
			t.Errorf("ByName(%q) round-trip mismatch: %+v", g.Name, got)
		}
	}
	if _, ok := ByName("C1-L4"); ok {
		t.Error("unknown stacked name should not resolve")
	}
}

func TestHierarchyTwoLevelConfigs(t *testing.T) {
	// The paper's five configurations compile to a single explicit tier
	// (the chain ends implicitly at DRAM).
	for _, g := range All() {
		spec, err := g.Hierarchy()
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if len(spec) != 1 {
			t.Errorf("%s: %d tiers, want 1", g.Name, len(spec))
		}
	}
}

func TestHierarchyStackedConfigs(t *testing.T) {
	tests := []struct {
		cfg     GPUConfig
		variant CellVariant
	}{
		{C1L3(), CellReadTuned},
		{C2L3(), CellWriteTuned},
	}
	for _, tt := range tests {
		spec, err := tt.cfg.Hierarchy()
		if err != nil {
			t.Fatalf("%s: %v", tt.cfg.Name, err)
		}
		if len(spec) != 2 {
			t.Fatalf("%s: %d tiers, want 2", tt.cfg.Name, len(spec))
		}
		if spec[0].Kind != TierTwoPart {
			t.Errorf("%s: L2 kind %q, want %q", tt.cfg.Name, spec[0].Kind, TierTwoPart)
		}
		l3 := spec[1]
		if l3.Kind != TierSTTL3 || l3.Variant != tt.variant {
			t.Errorf("%s: L3 = %q/%q, want %q/%q",
				tt.cfg.Name, l3.Kind, l3.Variant, TierSTTL3, tt.variant)
		}
		if l3.TotalBytes != tt.cfg.L3.TotalBytes || l3.TotalBytes <= spec[0].TotalBytes {
			t.Errorf("%s: L3 capacity %d not larger than L2 %d",
				tt.cfg.Name, l3.TotalBytes, spec[0].TotalBytes)
		}
	}
}

func TestHierarchyErrors(t *testing.T) {
	unknownKind := C1()
	unknownKind.L2.Kind = L2Kind(99)
	negL3 := C1()
	negL3.L3.TotalBytes = -1
	badVariant := WithL3(C1(), 4*BaseL2Bytes, 0, CellVariant("mid-tuned"))
	tests := []struct {
		name string
		cfg  GPUConfig
		want string
	}{
		{"unknown L2 kind", unknownKind, "unknown L2 kind"},
		{"negative L3 capacity", negL3, "negative L3 capacity"},
		{"unknown L3 variant", badVariant, "unknown L3 cell variant"},
	}
	for _, tt := range tests {
		if _, err := tt.cfg.Hierarchy(); err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: Hierarchy() err = %v, want %q", tt.name, err, tt.want)
		}
		if _, err := tt.cfg.NewTiers(tt.cfg.NewDRAM()); err == nil {
			t.Errorf("%s: NewTiers should propagate the compile error", tt.name)
		}
		if err := tt.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", tt.name)
		}
	}
}

func TestValidateTurnsConstructorPanicsIntoErrors(t *testing.T) {
	// Geometry the compiler cannot see but the constructors panic on:
	// Validate must surface it as an error, never a panic.
	badClock := C1()
	badClock.ClockHz = 0
	badGeom := BaselineSRAM()
	// One extra line per bank: the per-bank capacity stops dividing by
	// ways*line, which the cache constructor panics on.
	badGeom.L2.TotalBytes = BaseL2Bytes + badGeom.NumBanks*badGeom.LineBytes
	for _, tt := range []struct {
		name string
		cfg  GPUConfig
	}{
		{"zero clock", badClock},
		{"indivisible capacity", badGeom},
	} {
		err := tt.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", tt.name)
			continue
		}
		if !strings.Contains(err.Error(), "config "+tt.cfg.Name) {
			t.Errorf("%s: error %q does not name the config", tt.name, err)
		}
	}
	// And the well-formed configurations all pass.
	for _, g := range Extended() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v, want nil", g.Name, err)
		}
	}
}

func TestDRAMSpecDefaults(t *testing.T) {
	var zero DRAMSpec
	d := zero.withDefaults()
	if d.Banks != 8 || d.RowBytes != 2048 {
		t.Errorf("defaults = %d banks / %dB rows, want 8 / 2048", d.Banks, d.RowBytes)
	}
	if d.RowHitLatency <= 0 || d.RowMissLatency <= d.RowHitLatency || d.BurstGap <= 0 {
		t.Errorf("default timing implausible: %+v", d)
	}
	// Partial overrides keep the rest at defaults.
	part := DRAMSpec{Banks: 16}.withDefaults()
	if part.Banks != 16 || part.RowBytes != 2048 {
		t.Errorf("partial override = %d banks / %dB rows, want 16 / 2048", part.Banks, part.RowBytes)
	}
	for _, bad := range []DRAMSpec{
		{Banks: 7},
		{RowBytes: 1000},
		{RowHitLatency: -1},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("DRAMSpec%+v should not validate", bad)
		}
	}
	g := C1()
	g.DRAM = DRAMSpec{Banks: 7}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Errorf("GPUConfig.Validate with bad DRAM = %v, want power-of-two error", err)
	}
}

func TestNewTiersChains(t *testing.T) {
	g := C2L3()
	tiers, err := g.NewTiers(g.NewDRAM())
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) != 2 {
		t.Fatalf("chain length = %d, want 2", len(tiers))
	}
	if _, ok := tiers[0].(*core.TwoPartBank); !ok {
		t.Errorf("top tier is %T, want *core.TwoPartBank", tiers[0])
	}
	l3, ok := tiers[1].(*core.UniformBank)
	if !ok {
		t.Fatalf("bottom tier is %T, want *core.UniformBank", tiers[1])
	}
	if l3.Config().CapacityBytes != g.L3.TotalBytes/g.NumBanks {
		t.Errorf("L3 bank capacity = %d, want %d",
			l3.Config().CapacityBytes, g.L3.TotalBytes/g.NumBanks)
	}
	// A miss in the top tier must flow through the chain and come back
	// with a completion time: the L2's backing is the L3, not DRAM.
	if done, hit := tiers[0].Access(0, 0x4000, false); hit || done <= 0 {
		t.Errorf("cold access = (%d, %v), want a miss with positive latency", done, hit)
	}
	if l3.Stats().Reads == 0 {
		t.Error("L2 miss did not reach the stacked L3")
	}
	// NewBank stays the chain's top for compatibility.
	if b := g.NewBank(g.NewDRAM()); b == nil {
		t.Error("NewBank returned nil for a stacked config")
	} else if _, ok := b.(*core.TwoPartBank); !ok {
		t.Errorf("NewBank = %T, want the chain's top tier", b)
	}
}

func TestWithL3(t *testing.T) {
	g := WithL3(C3(), 6<<20, 12, CellWriteTuned)
	if g.L3.TotalBytes != 6<<20 || g.L3.Ways != 12 || g.L3.Variant != CellWriteTuned {
		t.Errorf("WithL3 = %+v", g.L3)
	}
	spec, err := g.Hierarchy()
	if err != nil || len(spec) != 2 || spec[1].Ways != 12 {
		t.Errorf("Hierarchy after WithL3 = %+v, %v", spec, err)
	}
}
