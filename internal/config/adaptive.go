// Organization C4: the runtime-adaptive two-part bank. C1-C3 fix the
// LR share, the WWS migration threshold, and the HR retention tier at
// design time; C4 starts from C2's iso-capacity split and lets an
// online controller (internal/sim) retune all three at epoch
// boundaries from the bank's own statistics deltas, using the explicit
// transition API on core.TwoPartBank. The spec here is pure policy
// configuration — a disabled spec (the zero value) changes nothing
// anywhere, which is what keeps every C1-C3 golden dump byte-identical.
package config

import (
	"fmt"
	"time"
)

// AdaptiveSpec configures the C4 online reconfiguration controller.
// The zero value disables it. Zero fields of an enabled spec take the
// defaults below (withDefaults).
type AdaptiveSpec struct {
	// Enabled turns the controller on. Only meaningful on two-part
	// organizations; Validate rejects it elsewhere.
	Enabled bool
	// EpochCycles is the controller's sampling period in core cycles
	// (0 = 25000, ~36µs at 700MHz — short enough that the evaluation
	// kernels, which retire within a few hundred thousand cycles, see
	// several adaptation opportunities).
	EpochCycles int64
	// MinLRWays floors LR shrinking (0 = 1; never below 1).
	MinLRWays int
	// MaxThreshold caps threshold raising (0 = 4; hard cap 15, the
	// 4-bit WWS counter's saturation point).
	MaxThreshold uint8
	// RetentionLadder is the ascending set of HR retention tiers the
	// controller may switch among (nil = {10ms, 40ms, 160ms}). Every
	// entry must be at least the LR retention so the bank's TickPeriod
	// — the finer of the two scan cadences — is invariant across
	// switches and the simulator's captured tick cadence stays valid.
	RetentionLadder []time.Duration
	// OverflowPerMille raises the migration threshold when an epoch's
	// overflow writebacks exceed this fraction (per mille) of its
	// migrations: the swap buffers are thrashing, so migrate less
	// (0 = 125, i.e. 12.5%).
	OverflowPerMille int
	// ShrinkSharePerMille shrinks the LR part when the epoch's LR write
	// share falls below this per-mille fraction — the write working set
	// is not using the fast ways (0 = 100, i.e. 10%).
	ShrinkSharePerMille int
	// GrowSharePerMille re-opens LR ways when the share climbs back
	// above this fraction (0 = 300, i.e. 30%).
	GrowSharePerMille int
	// ExpiryPerMille ladders the HR retention up when an epoch's HR
	// expiries exceed this fraction of its DRAM fills — expiry-driven
	// refetch is eating the cheap-write gains (0 = 50, i.e. 5%).
	ExpiryPerMille int
}

// DefaultAdaptiveEpochCycles is the controller's default sampling
// period; the service collapses this spelling to the zero field so
// equivalent requests share one cache key.
const DefaultAdaptiveEpochCycles = 25000

// defaultRetentionLadder is the HR tiers C4 sweeps by default: one
// step below and one above the paper's 40ms design point.
func defaultRetentionLadder() []time.Duration {
	return []time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 160 * time.Millisecond}
}

// withDefaults resolves zero fields of an enabled spec. A disabled
// spec is returned unchanged — its fields are never read.
func (a AdaptiveSpec) withDefaults() AdaptiveSpec {
	if !a.Enabled {
		return a
	}
	if a.EpochCycles == 0 {
		a.EpochCycles = DefaultAdaptiveEpochCycles
	}
	if a.MinLRWays == 0 {
		a.MinLRWays = 1
	}
	if a.MaxThreshold == 0 {
		a.MaxThreshold = 4
	}
	if len(a.RetentionLadder) == 0 {
		a.RetentionLadder = defaultRetentionLadder()
	}
	if a.OverflowPerMille == 0 {
		a.OverflowPerMille = 125
	}
	if a.ShrinkSharePerMille == 0 {
		a.ShrinkSharePerMille = 100
	}
	if a.GrowSharePerMille == 0 {
		a.GrowSharePerMille = 300
	}
	if a.ExpiryPerMille == 0 {
		a.ExpiryPerMille = 50
	}
	return a
}

// Resolved returns the spec with defaults applied — what the simulator
// actually runs.
func (a AdaptiveSpec) Resolved() AdaptiveSpec { return a.withDefaults() }

// validate checks an adaptive spec against its owning configuration.
func (a AdaptiveSpec) validate(g GPUConfig) error {
	if !a.Enabled {
		return nil
	}
	if g.L2.Kind != L2TwoPart {
		return fmt.Errorf("adaptive reconfiguration requires a two-part L2")
	}
	w := a.withDefaults()
	if w.EpochCycles < 1 {
		return fmt.Errorf("adaptive epoch %d must be positive", w.EpochCycles)
	}
	if w.MinLRWays < 1 || w.MinLRWays > g.L2.LRWays {
		return fmt.Errorf("adaptive MinLRWays %d outside [1, %d]", w.MinLRWays, g.L2.LRWays)
	}
	if w.MaxThreshold > 15 {
		return fmt.Errorf("adaptive MaxThreshold %d exceeds the 4-bit counter cap 15", w.MaxThreshold)
	}
	if w.MaxThreshold < g.L2.WriteThreshold {
		return fmt.Errorf("adaptive MaxThreshold %d below the configured threshold %d",
			w.MaxThreshold, g.L2.WriteThreshold)
	}
	lrRet := g.lrCell().Retention
	prev := time.Duration(0)
	for _, r := range w.RetentionLadder {
		if r <= prev {
			return fmt.Errorf("adaptive retention ladder must be strictly ascending (got %v after %v)", r, prev)
		}
		if lrRet > 0 && r < lrRet {
			// hrTick >= lrTick keeps TickPeriod invariant across switches.
			return fmt.Errorf("adaptive retention tier %v below the LR retention %v", r, lrRet)
		}
		prev = r
	}
	if w.OverflowPerMille < 0 || w.ShrinkSharePerMille < 0 ||
		w.GrowSharePerMille < 0 || w.ExpiryPerMille < 0 {
		return fmt.Errorf("adaptive policy ratios must be non-negative")
	}
	if w.ShrinkSharePerMille >= w.GrowSharePerMille {
		return fmt.Errorf("adaptive shrink share %d‰ must be below grow share %d‰ (hysteresis)",
			w.ShrinkSharePerMille, w.GrowSharePerMille)
	}
	return nil
}

// C4 is C2 — the iso-capacity two-part L2 with the register bonus —
// plus the online reconfiguration controller at its defaults.
func C4() GPUConfig {
	g := C2()
	g.Name = "C4"
	g.Description = "iso-capacity two-part STT-RAM L2 with runtime-adaptive reconfiguration"
	g.Adaptive = AdaptiveSpec{Enabled: true}
	return g
}
