// Package config encodes Table 2 of the paper: the GTX480-like baseline
// GPU and the five L2 organizations the evaluation compares — the SRAM
// baseline, the naive 4x archival STT-RAM baseline, and the proposed
// two-part configurations C1 (all saved area to a 4x L2), C2
// (iso-capacity L2, saved area to larger register files), and C3 (2x L2
// plus a register bonus). Register-file sizes for C2/C3 are derived from
// the area model rather than hard-coded, closing the paper's iso-area
// accounting loop.
package config

import (
	"fmt"
	"time"

	"sttllc/internal/arraymodel"
	"sttllc/internal/cache"
	"sttllc/internal/core"
	"sttllc/internal/dram"
	"sttllc/internal/gpu"
)

// L2Kind selects the bank organization.
type L2Kind int

const (
	L2SRAM L2Kind = iota
	L2STTUniform
	L2TwoPart
)

// L2Spec describes the whole (all-bank) L2 organization.
type L2Spec struct {
	Kind L2Kind

	// Uniform organizations.
	TotalBytes int
	Ways       int

	// Two-part organizations (totals across banks).
	HRBytes int
	HRWays  int
	LRBytes int
	LRWays  int

	WriteThreshold   uint8
	BufferBlocks     int
	ParallelSearch   bool
	DisableMigration bool

	// LRRetention overrides the LR part's retention class (0 = the
	// default 1ms cell). Used by the retention-sensitivity sweep.
	LRRetention time.Duration
	// HRRetention overrides the HR part's retention class (0 = the
	// default 40ms cell). Used by the adaptive policy sweep's fixed
	// competitors — the static tiers C4's controller chooses among.
	HRRetention time.Duration
	// Replacement selects the victim policy of every L2 array
	// (default LRU).
	Replacement cache.Policy
	// AdaptiveThreshold enables runtime tuning of the WWS monitor's
	// write threshold (extension; the paper uses a static 1).
	AdaptiveThreshold bool
	// SRAMLR builds the LR part out of SRAM instead of low-retention
	// STT-RAM — the hybrid design of the related work (Goswami et al.,
	// HPCA'13). Note this breaks the iso-area premise: SRAM bits cost
	// 4x the area, so a same-capacity SRAM LR would not actually fit.
	SRAMLR bool
}

// Capacity returns the total L2 data capacity in bytes.
func (s L2Spec) Capacity() int {
	if s.Kind == L2TwoPart {
		return s.HRBytes + s.LRBytes
	}
	return s.TotalBytes
}

// GPUConfig is one full system configuration.
type GPUConfig struct {
	Name        string
	Description string
	ClockHz     float64
	NumSMs      int
	NumBanks    int // L2 banks == memory controllers (Table 2: 6)
	LineBytes   int // L2 line size (256B)
	SM          gpu.SMConfig
	L2          L2Spec
	// NoCStageCycles is the butterfly per-stage latency.
	NoCStageCycles int64
	// DetailedNoC swaps the port-level request network for the
	// flit-level butterfly with per-link contention.
	DetailedNoC bool
	// L3 optionally stacks an STT-MRAM tier between the L2 banks and
	// DRAM (the zero value keeps the paper's two-level hierarchy).
	L3 L3Spec
	// DRAM configures each bank's private memory channel (zero fields
	// take the paper's defaults).
	DRAM DRAMSpec
	// Adaptive enables the C4 online reconfiguration controller on a
	// two-part L2 (the zero value keeps the organization static).
	Adaptive AdaptiveSpec
}

// Baseline hardware constants (Table 2).
const (
	BaseClockHz    = 700e6
	BaseSMs        = 15
	BaseBanks      = 6
	BaseLineBytes  = 256
	BaseL2Bytes    = 384 << 10
	BaseL2Ways     = 8
	BaseRegsPerSM  = 32768
	baseNoCStageCy = 2
)

func baseGPU(name, desc string) GPUConfig {
	return GPUConfig{
		Name:           name,
		Description:    desc,
		ClockHz:        BaseClockHz,
		NumSMs:         BaseSMs,
		NumBanks:       BaseBanks,
		LineBytes:      BaseLineBytes,
		SM:             gpu.DefaultSMConfig(),
		NoCStageCycles: baseNoCStageCy,
	}
}

// BaselineSRAM returns the conventional GPU: 384KB 8-way SRAM L2.
func BaselineSRAM() GPUConfig {
	g := baseGPU("baseline-SRAM", "conventional SRAM L2 (GTX480-like)")
	g.L2 = L2Spec{Kind: L2SRAM, TotalBytes: BaseL2Bytes, Ways: BaseL2Ways}
	return g
}

// BaselineSTT returns the naive STT-RAM replacement: same area, so 4x the
// capacity, but archival (10-year) cells with slow, hot writes.
func BaselineSTT() GPUConfig {
	g := baseGPU("baseline-STT", "naive archival STT-RAM L2, 4x capacity at equal area")
	g.L2 = L2Spec{
		Kind:       L2STTUniform,
		TotalBytes: arraymodel.EqualAreaSTTBytes(BaseL2Bytes),
		Ways:       BaseL2Ways,
	}
	return g
}

// twoPart builds an L2Spec with the paper's 7-way HR + 2-way LR split for
// a given total capacity: LR is 1/8 of the total (192KB of 1536KB in C1).
func twoPart(totalBytes int) L2Spec {
	lr := totalBytes / 8
	return L2Spec{
		Kind:           L2TwoPart,
		HRBytes:        totalBytes - lr,
		HRWays:         7,
		LRBytes:        lr,
		LRWays:         2,
		WriteThreshold: 1,
		BufferBlocks:   2,
	}
}

// C1 spends all the saved area on a 4x larger two-part L2
// (1344KB 7-way HR + 192KB 2-way LR).
func C1() GPUConfig {
	g := baseGPU("C1", "4x two-part STT-RAM L2 at equal area")
	g.L2 = twoPart(arraymodel.EqualAreaSTTBytes(BaseL2Bytes))
	return g
}

// C2 keeps the L2 capacity at the SRAM baseline (336KB HR + 48KB LR) and
// spends the saved area on larger per-SM register files.
func C2() GPUConfig {
	g := baseGPU("C2", "iso-capacity two-part STT-RAM L2, saved area to registers")
	g.L2 = twoPart(BaseL2Bytes)
	g.SM.Registers = BaseRegsPerSM + RegisterBonusPerSM(BaseL2Bytes)
	return g
}

// C3 doubles the L2 (672KB HR + 96KB LR) and spends the remaining saved
// area on registers.
func C3() GPUConfig {
	g := baseGPU("C3", "2x two-part STT-RAM L2 plus register bonus")
	g.L2 = twoPart(2 * BaseL2Bytes)
	g.SM.Registers = BaseRegsPerSM + RegisterBonusPerSM(2*BaseL2Bytes)
	return g
}

// RegisterBonusPerSM returns how many extra 32-bit registers each SM
// gains when the SRAM L2 is replaced by an STT-RAM L2 of sttBytes and the
// remaining area goes to register files.
func RegisterBonusPerSM(sttBytes int) int {
	saved := arraymodel.SavedAreaMM2(BaseL2Bytes, sttBytes)
	if saved <= 0 {
		return 0
	}
	return arraymodel.RegistersFromAreaMM2(saved) / BaseSMs
}

// All returns the five configurations in evaluation order.
func All() []GPUConfig {
	return []GPUConfig{BaselineSRAM(), BaselineSTT(), C1(), C2(), C3()}
}

// ByName returns the named configuration, searching the extended set
// (the paper's five plus the stacked-L3 variants).
func ByName(name string) (GPUConfig, bool) {
	for _, g := range Extended() {
		if g.Name == name {
			return g, true
		}
	}
	return GPUConfig{}, false
}

// NewBank compiles the hierarchy and returns the top tier of one bank's
// chain (the L2 the interconnect talks to); lower tiers are reachable
// through the Backing links. Retained for single-bank tools and the
// differential harness; the simulator builds chains via NewTiers.
// Panics on an invalid hierarchy — Validate reports errors instead.
func (g GPUConfig) NewBank(mc *dram.Controller) core.Bank {
	tiers, err := g.NewTiers(mc)
	if err != nil {
		panic(err)
	}
	return tiers[0]
}

// NewDRAM constructs one bank's memory controller from the DRAM spec
// (the zero spec reproduces the paper's 8-bank, 2KB-row channel).
func (g GPUConfig) NewDRAM() *dram.Controller {
	d := g.DRAM.withDefaults()
	return dram.New(d.Banks, d.RowBytes, dram.Timing{
		RowHitLatency:  d.RowHitLatency,
		RowMissLatency: d.RowMissLatency,
		BurstGap:       d.BurstGap,
	})
}

// Table2Row is one row of the reproduced Table 2.
type Table2Row struct {
	Name        string
	RegsPerSM   int
	L2          string
	L2TotalKB   int
	Description string
}

// Table2 reproduces the paper's Table 2 from the configuration code.
func Table2() []Table2Row {
	rows := make([]Table2Row, 0, 5)
	for _, g := range All() {
		var l2 string
		switch g.L2.Kind {
		case L2SRAM:
			l2 = fmt.Sprintf("%dKB %d-way SRAM, %dB line",
				g.L2.TotalBytes>>10, g.L2.Ways, g.LineBytes)
		case L2STTUniform:
			l2 = fmt.Sprintf("%dKB %d-way STT-RAM (10yr), %dB line",
				g.L2.TotalBytes>>10, g.L2.Ways, g.LineBytes)
		case L2TwoPart:
			l2 = fmt.Sprintf("%dKB %d-way HR + %dKB %d-way LR, %dB line",
				g.L2.HRBytes>>10, g.L2.HRWays, g.L2.LRBytes>>10, g.L2.LRWays, g.LineBytes)
		}
		rows = append(rows, Table2Row{
			Name:        g.Name,
			RegsPerSM:   g.SM.Registers,
			L2:          l2,
			L2TotalKB:   g.L2.Capacity() >> 10,
			Description: g.Description,
		})
	}
	return rows
}

// FormatTable2 renders Table 2 as text.
func FormatTable2() string {
	s := fmt.Sprintf("%-14s %10s %8s  %s\n", "Config", "Regs/SM", "L2 KB", "L2 organization")
	for _, r := range Table2() {
		s += fmt.Sprintf("%-14s %10d %8d  %s\n", r.Name, r.RegsPerSM, r.L2TotalKB, r.L2)
	}
	return s
}
