package config

import (
	"strings"
	"testing"

	"sttllc/internal/core"
)

func TestAllConfigsPresent(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("configurations = %d, want 5", len(all))
	}
	want := []string{"baseline-SRAM", "baseline-STT", "C1", "C2", "C3"}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("config[%d] = %q, want %q", i, all[i].Name, name)
		}
	}
}

func TestByName(t *testing.T) {
	g, ok := ByName("C1")
	if !ok || g.Name != "C1" {
		t.Fatalf("ByName(C1) failed: %+v %v", g, ok)
	}
	if _, ok := ByName("C9"); ok {
		t.Error("unknown config should not resolve")
	}
}

func TestTable2Capacities(t *testing.T) {
	// The exact capacity ladder of Table 2.
	tests := []struct {
		name    string
		totalKB int
	}{
		{"baseline-SRAM", 384},
		{"baseline-STT", 1536},
		{"C1", 1536},
		{"C2", 384},
		{"C3", 768},
	}
	for _, tt := range tests {
		g, _ := ByName(tt.name)
		if got := g.L2.Capacity() >> 10; got != tt.totalKB {
			t.Errorf("%s capacity = %dKB, want %dKB", tt.name, got, tt.totalKB)
		}
	}
}

func TestTwoPartSplits(t *testing.T) {
	// C1: 1344KB 7-way HR + 192KB 2-way LR; C2: 336+48; C3: 672+96.
	tests := []struct {
		name         string
		hrKB, lrKB   int
		hrWay, lrWay int
	}{
		{"C1", 1344, 192, 7, 2},
		{"C2", 336, 48, 7, 2},
		{"C3", 672, 96, 7, 2},
	}
	for _, tt := range tests {
		g, _ := ByName(tt.name)
		if g.L2.HRBytes>>10 != tt.hrKB || g.L2.LRBytes>>10 != tt.lrKB {
			t.Errorf("%s split = %d+%dKB, want %d+%dKB",
				tt.name, g.L2.HRBytes>>10, g.L2.LRBytes>>10, tt.hrKB, tt.lrKB)
		}
		if g.L2.HRWays != tt.hrWay || g.L2.LRWays != tt.lrWay {
			t.Errorf("%s ways = %d/%d, want %d/%d",
				tt.name, g.L2.HRWays, g.L2.LRWays, tt.hrWay, tt.lrWay)
		}
	}
}

func TestRegisterBonuses(t *testing.T) {
	base := BaselineSRAM().SM.Registers
	c2 := C2().SM.Registers
	c3 := C3().SM.Registers
	if base != 32768 {
		t.Errorf("baseline registers = %d, want 32768", base)
	}
	if !(c2 > c3 && c3 > base) {
		t.Errorf("register ordering violated: base=%d C3=%d C2=%d", base, c3, c2)
	}
	// C2 frees 3/4 of the SRAM L2 area: 288KB of SRAM bits -> 73728
	// registers over 15 SMs, ~4915 per SM.
	if got := c2 - base; got < 4000 || got > 6000 {
		t.Errorf("C2 register bonus = %d, want ~4915", got)
	}
	// C3 frees half: ~3276 per SM (the Table 2 OCR shows "3644x" for
	// C3's register column, consistent with ~36044).
	if got := c3 - base; got < 2500 || got > 4000 {
		t.Errorf("C3 register bonus = %d, want ~3276", got)
	}
	// C1 and the baselines get no bonus.
	for _, name := range []string{"baseline-STT", "C1"} {
		g, _ := ByName(name)
		if g.SM.Registers != base {
			t.Errorf("%s registers = %d, want %d", name, g.SM.Registers, base)
		}
	}
}

func TestRegisterBonusNonPositiveSaved(t *testing.T) {
	// An STT L2 so large it eats all saved area yields no bonus.
	if got := RegisterBonusPerSM(4 * BaseL2Bytes); got != 0 {
		t.Errorf("bonus with zero saved area = %d, want 0", got)
	}
}

func TestBankGeometriesDivideEvenly(t *testing.T) {
	for _, g := range All() {
		switch g.L2.Kind {
		case L2TwoPart:
			if g.L2.HRBytes%g.NumBanks != 0 || g.L2.LRBytes%g.NumBanks != 0 {
				t.Errorf("%s: parts not divisible by %d banks", g.Name, g.NumBanks)
			}
		default:
			if g.L2.TotalBytes%g.NumBanks != 0 {
				t.Errorf("%s: capacity not divisible by %d banks", g.Name, g.NumBanks)
			}
		}
	}
}

func TestNewBankKinds(t *testing.T) {
	for _, g := range All() {
		b := g.NewBank(g.NewDRAM())
		switch g.L2.Kind {
		case L2TwoPart:
			if _, ok := b.(*core.TwoPartBank); !ok {
				t.Errorf("%s: bank type %T, want TwoPartBank", g.Name, b)
			}
		default:
			if _, ok := b.(*core.UniformBank); !ok {
				t.Errorf("%s: bank type %T, want UniformBank", g.Name, b)
			}
		}
		// Every bank starts functional.
		if done, _ := b.Access(0, 0x1000, false); done <= 0 {
			t.Errorf("%s: bank access returned %d", g.Name, done)
		}
	}
}

func TestSTTBanksLeakLessThanSRAM(t *testing.T) {
	sram, _ := ByName("baseline-SRAM")
	sb := sram.NewBank(sram.NewDRAM())
	for _, name := range []string{"baseline-STT", "C1", "C2", "C3"} {
		g, _ := ByName(name)
		b := g.NewBank(g.NewDRAM())
		if b.LeakageWatts() >= sb.LeakageWatts() {
			t.Errorf("%s leakage %g >= SRAM %g", name, b.LeakageWatts(), sb.LeakageWatts())
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	s := FormatTable2()
	for _, want := range []string{"baseline-SRAM", "C1", "C2", "C3", "1344KB", "192KB", "336KB", "672KB", "32768"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, s)
		}
	}
	rows := Table2()
	if len(rows) != 5 {
		t.Errorf("Table2 rows = %d, want 5", len(rows))
	}
}

func TestBaselineSMMatchesTable2(t *testing.T) {
	g := BaselineSRAM()
	if g.NumSMs != 15 || g.NumBanks != 6 || g.LineBytes != 256 {
		t.Errorf("baseline shape = %d SMs, %d banks, %dB lines", g.NumSMs, g.NumBanks, g.LineBytes)
	}
	if g.SM.L1Bytes != 16<<10 || g.SM.L1Ways != 4 || g.SM.L1LineBytes != 128 {
		t.Errorf("L1 = %dKB %d-way %dB", g.SM.L1Bytes>>10, g.SM.L1Ways, g.SM.L1LineBytes)
	}
	if g.ClockHz != 700e6 {
		t.Errorf("clock = %g", g.ClockHz)
	}
}
