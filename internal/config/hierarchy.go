// Hierarchy specs: the declarative description of a bank's memory
// stack. A GPUConfig compiles into an ordered list of tiers (L2 first,
// optionally a stacked STT-MRAM L3) ending implicitly at the bank's
// DRAM channel, and NewTiers instantiates that list bottom-up into a
// chain of core.Tier values. The stacked-L3 scenario follows the
// related work the paper cites forward to: FUSE-style on-package
// STT-MRAM absorbing off-chip traffic behind the banked L2.
package config

import (
	"fmt"

	"sttllc/internal/arraymodel"
	"sttllc/internal/core"
	"sttllc/internal/dram"
	"sttllc/internal/sttram"
)

// TierKind names a tier implementation in a HierarchySpec.
type TierKind string

const (
	// TierSRAM is a conventional single-technology SRAM bank.
	TierSRAM TierKind = "sram"
	// TierSTTUniform is the naive archival STT-RAM bank.
	TierSTTUniform TierKind = "stt-uniform"
	// TierTwoPart is the paper's LR/HR two-part bank.
	TierTwoPart TierKind = "two-part"
	// TierSTTL3 is a stacked STT-MRAM tier behind the L2.
	TierSTTL3 TierKind = "stt-l3"
)

// CellVariant selects the timing flavor of a stacked STT tier's cell.
type CellVariant string

const (
	// CellReadTuned favors retention (archival cell): read-mostly data
	// sits below the L2 indefinitely at the cost of the full write
	// pulse. The default.
	CellReadTuned CellVariant = "read-tuned"
	// CellWriteTuned relaxes retention to the refresh-free floor,
	// trading retention margin for a shorter, cooler write pulse.
	CellWriteTuned CellVariant = "write-tuned"
)

// TierSpec is one level of a compiled hierarchy: kind, data capacity
// across all banks, associativity, the resolved cell, and (for stacked
// STT tiers) the timing variant. Two-part tiers carry their HR/LR split
// and tuning knobs in the owning GPUConfig's L2Spec; the TierSpec holds
// the tier's headline shape.
type TierSpec struct {
	Kind       TierKind
	TotalBytes int
	Ways       int
	Cell       string
	Variant    CellVariant
}

// HierarchySpec is the ordered tier list, L2 first; every chain ends
// implicitly at the bank's DRAM channel.
type HierarchySpec []TierSpec

// L3Spec configures the optional stacked STT-MRAM L3 tier between the
// L2 banks and DRAM. The zero value disables it (the paper's two-level
// hierarchy).
type L3Spec struct {
	// TotalBytes is the L3 data capacity across all banks (0 = no L3).
	TotalBytes int
	// Ways is the set associativity (0 = the L2 default of 8).
	Ways int
	// Variant picks the cell timing flavor ("" = read-tuned).
	Variant CellVariant
}

// DRAMSpec configures each bank's private memory channel. Zero fields
// take the paper's GTX480-like defaults (8 DRAM banks, 2KB row buffer,
// default GDDR5 timing), so the zero value reproduces NewDRAM's
// historical behavior exactly.
type DRAMSpec struct {
	// Banks is the number of DRAM banks per channel (power of two).
	Banks int
	// RowBytes is the row-buffer size in bytes (power of two).
	RowBytes int
	// Timing overrides, in core cycles (0 = default).
	RowHitLatency  int64
	RowMissLatency int64
	BurstGap       int64
}

// withDefaults resolves zero fields to the paper's values.
func (d DRAMSpec) withDefaults() DRAMSpec {
	def := dram.DefaultTiming()
	if d.Banks == 0 {
		d.Banks = 8
	}
	if d.RowBytes == 0 {
		d.RowBytes = 2048
	}
	if d.RowHitLatency == 0 {
		d.RowHitLatency = def.RowHitLatency
	}
	if d.RowMissLatency == 0 {
		d.RowMissLatency = def.RowMissLatency
	}
	if d.BurstGap == 0 {
		d.BurstGap = def.BurstGap
	}
	return d
}

// validate reports geometry errors dram.New would panic on, plus
// nonsensical timing.
func (d DRAMSpec) validate() error {
	w := d.withDefaults()
	if w.Banks <= 0 || w.Banks&(w.Banks-1) != 0 {
		return fmt.Errorf("dram banks %d must be a positive power of two", w.Banks)
	}
	if w.RowBytes <= 0 || w.RowBytes&(w.RowBytes-1) != 0 {
		return fmt.Errorf("dram row size %d must be a positive power of two", w.RowBytes)
	}
	if w.RowHitLatency < 0 || w.RowMissLatency < 0 || w.BurstGap < 0 {
		return fmt.Errorf("dram timing must be non-negative")
	}
	return nil
}

// lrCell resolves the LR part's cell, honoring the retention-sweep and
// SRAM-LR overrides.
func (g GPUConfig) lrCell() sttram.Cell {
	cell := sttram.LRCell()
	if g.L2.LRRetention > 0 {
		cell = sttram.NewCell(fmt.Sprintf("STT-%v", g.L2.LRRetention), g.L2.LRRetention)
	}
	if g.L2.SRAMLR {
		cell = sttram.SRAMCell()
	}
	return cell
}

// hrCell resolves the HR part's cell, honoring the retention override.
func (g GPUConfig) hrCell() sttram.Cell {
	if g.L2.HRRetention > 0 {
		return sttram.NewCell(fmt.Sprintf("STT-%v", g.L2.HRRetention), g.L2.HRRetention)
	}
	return sttram.HRCell()
}

// l3Cell resolves a stacked tier's cell variant.
func l3Cell(v CellVariant) (sttram.Cell, error) {
	switch v {
	case CellReadTuned:
		return sttram.L3ReadTunedCell(), nil
	case CellWriteTuned:
		return sttram.L3WriteTunedCell(), nil
	default:
		return sttram.Cell{}, fmt.Errorf("unknown L3 cell variant %q", v)
	}
}

// Hierarchy compiles the configuration into its declarative tier list.
// Unknown kinds or variants are errors, not panics, so callers that
// accept untrusted configurations (the service) can reject them
// cleanly.
func (g GPUConfig) Hierarchy() (HierarchySpec, error) {
	var l2 TierSpec
	switch g.L2.Kind {
	case L2SRAM:
		l2 = TierSpec{Kind: TierSRAM, TotalBytes: g.L2.TotalBytes, Ways: g.L2.Ways,
			Cell: sttram.SRAMCell().Name}
	case L2STTUniform:
		l2 = TierSpec{Kind: TierSTTUniform, TotalBytes: g.L2.TotalBytes, Ways: g.L2.Ways,
			Cell: sttram.ArchivalCell().Name}
	case L2TwoPart:
		l2 = TierSpec{Kind: TierTwoPart, TotalBytes: g.L2.Capacity(), Ways: g.L2.HRWays + g.L2.LRWays,
			Cell: g.hrCell().Name + "+" + g.lrCell().Name}
	default:
		return nil, fmt.Errorf("config %s: unknown L2 kind %d", g.Name, g.L2.Kind)
	}
	spec := HierarchySpec{l2}

	if g.L3.TotalBytes < 0 {
		return nil, fmt.Errorf("config %s: negative L3 capacity %d", g.Name, g.L3.TotalBytes)
	}
	if g.L3.TotalBytes > 0 {
		v := g.L3.Variant
		if v == "" {
			v = CellReadTuned
		}
		cell, err := l3Cell(v)
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", g.Name, err)
		}
		ways := g.L3.Ways
		if ways == 0 {
			ways = BaseL2Ways
		}
		spec = append(spec, TierSpec{Kind: TierSTTL3, TotalBytes: g.L3.TotalBytes, Ways: ways,
			Cell: cell.Name, Variant: v})
	}
	return spec, nil
}

// newTier instantiates one tier of the compiled spec on top of back.
func (g GPUConfig) newTier(t TierSpec, back core.Backing) (core.Tier, error) {
	uniform := func(cell sttram.Cell) core.Tier {
		return core.NewUniformBank(core.UniformConfig{
			CapacityBytes: t.TotalBytes / g.NumBanks,
			Ways:          t.Ways,
			LineBytes:     g.LineBytes,
			Cell:          cell,
			ClockHz:       g.ClockHz,
			Replacement:   g.L2.Replacement,
		}, back)
	}
	switch t.Kind {
	case TierSRAM:
		return uniform(sttram.SRAMCell()), nil
	case TierSTTUniform:
		return uniform(sttram.ArchivalCell()), nil
	case TierSTTL3:
		cell, err := l3Cell(t.Variant)
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", g.Name, err)
		}
		return core.NewUniformBank(core.UniformConfig{
			CapacityBytes: t.TotalBytes / g.NumBanks,
			Ways:          t.Ways,
			LineBytes:     g.LineBytes,
			Cell:          cell,
			ClockHz:       g.ClockHz,
		}, back), nil
	case TierTwoPart:
		return core.NewTwoPartBank(core.TwoPartConfig{
			LRBytes:           g.L2.LRBytes / g.NumBanks,
			LRWays:            g.L2.LRWays,
			LRCell:            g.lrCell(),
			HRBytes:           g.L2.HRBytes / g.NumBanks,
			HRWays:            g.L2.HRWays,
			HRCell:            g.hrCell(),
			LineBytes:         g.LineBytes,
			ClockHz:           g.ClockHz,
			WriteThreshold:    g.L2.WriteThreshold,
			AdaptiveThreshold: g.L2.AdaptiveThreshold,
			BufferBlocks:      g.L2.BufferBlocks,
			ParallelSearch:    g.L2.ParallelSearch,
			DisableMigration:  g.L2.DisableMigration,
			Replacement:       g.L2.Replacement,
		}, back), nil
	default:
		return nil, fmt.Errorf("config %s: unknown tier kind %q", g.Name, t.Kind)
	}
}

// NewTiers compiles the hierarchy and instantiates one bank's tier
// chain on top of mc, built bottom-up so each tier's miss path drains
// into the one below it. The returned slice is ordered top-down
// (tiers[0] is the L2 the interconnect talks to).
func (g GPUConfig) NewTiers(mc *dram.Controller) ([]core.Tier, error) {
	spec, err := g.Hierarchy()
	if err != nil {
		return nil, err
	}
	tiers := make([]core.Tier, len(spec))
	var back core.Backing = mc
	for i := len(spec) - 1; i >= 0; i-- {
		t, err := g.newTier(spec[i], back)
		if err != nil {
			return nil, err
		}
		tiers[i] = t
		back = core.AsBacking(t)
	}
	return tiers, nil
}

// Validate compiles the hierarchy and DRAM geometry, reporting any
// configuration error (including ones the constructors would panic on)
// without leaving simulator state behind.
func (g GPUConfig) Validate() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("config %s: %v", g.Name, r)
		}
	}()
	if err := g.DRAM.validate(); err != nil {
		return fmt.Errorf("config %s: %w", g.Name, err)
	}
	if err := g.Adaptive.validate(g); err != nil {
		return fmt.Errorf("config %s: %w", g.Name, err)
	}
	if g.L2.HRRetention > 0 {
		if lr := g.lrCell().Retention; lr > 0 && g.L2.HRRetention < lr {
			// hrTick >= lrTick keeps the bank's TickPeriod the LR scan.
			return fmt.Errorf("config %s: HR retention %v below the LR retention %v",
				g.Name, g.L2.HRRetention, lr)
		}
	}
	if _, err := g.NewTiers(g.NewDRAM()); err != nil {
		return err
	}
	return nil
}

// WithL3 returns a copy of g with a stacked STT-MRAM L3 tier attached.
func WithL3(g GPUConfig, totalBytes, ways int, v CellVariant) GPUConfig {
	g.L3 = L3Spec{TotalBytes: totalBytes, Ways: ways, Variant: v}
	return g
}

// C1L3 stacks a read-tuned L3 of 4x the C1 L2 capacity behind C1's
// two-part L2: the FUSE-style scenario where a large on-package tier
// absorbs off-chip read traffic.
func C1L3() GPUConfig {
	g := WithL3(C1(), 4*arraymodel.EqualAreaSTTBytes(BaseL2Bytes), BaseL2Ways, CellReadTuned)
	g.Name = "C1-L3"
	g.Description = "C1 plus a stacked read-tuned STT-MRAM L3 (4x L2 capacity)"
	return g
}

// C2L3 stacks a write-tuned L3 of 4x the baseline L2 capacity behind
// C2's iso-capacity two-part L2, so the small L2's writebacks land in
// cheap on-package writes instead of DRAM.
func C2L3() GPUConfig {
	g := WithL3(C2(), 4*BaseL2Bytes, BaseL2Ways, CellWriteTuned)
	g.Name = "C2-L3"
	g.Description = "C2 plus a stacked write-tuned STT-MRAM L3 (4x baseline capacity)"
	return g
}

// Extended returns every named configuration: the paper's five (All)
// plus the stacked-L3 variants and the adaptive organization C4.
// Table 2 and the paper-facing sweeps stay on All; name lookup
// (ByName) covers the extended set.
func Extended() []GPUConfig {
	return append(All(), C1L3(), C2L3(), C4())
}
