package power

import (
	"math"
	"strings"
	"testing"

	"sttllc/internal/core"
	"sttllc/internal/dram"
	"sttllc/internal/sttram"
)

func makeBank(t *testing.T) core.Bank {
	t.Helper()
	mc := dram.New(8, 2048, dram.DefaultTiming())
	b := core.NewTwoPartBank(core.TwoPartConfig{
		LRBytes: 2 << 10, LRWays: 2, LRCell: sttram.LRCell(),
		HRBytes: 8 << 10, HRWays: 4, HRCell: sttram.HRCell(),
		LineBytes: 64, ClockHz: 1e9,
	}, mc)
	// Generate traffic across every component: fills, reads, writes,
	// migrations, refreshes.
	b.Access(0, 0x1000, false)
	b.Access(50, 0x1000, false) // HR read hit
	b.Access(100, 0x1000, true) // migration
	b.Access(200, 0x2000, true) // LR allocation
	b.Access(300, 0x2000, true) // LR write hit
	b.Tick(2_000_000)           // past LR retention: refreshes
	return b
}

func TestComponentStrings(t *testing.T) {
	want := []string{"tag-access", "data-read", "data-write", "migration", "refresh", "buffer", "rc-counters"}
	cs := Components()
	if len(cs) != len(want) {
		t.Fatalf("components = %d, want %d", len(cs), len(want))
	}
	for i, c := range cs {
		if c.String() != want[i] {
			t.Errorf("component %d = %q, want %q", i, c.String(), want[i])
		}
	}
	if Component(99).String() != "Component(99)" {
		t.Error("unknown component should render ordinal")
	}
}

func TestFromBanksCapturesAllComponents(t *testing.T) {
	b := FromBanks([]core.Bank{makeBank(t)}, 0.001)
	for _, c := range []Component{TagAccess, DataRead, DataWrite, Migration, Refresh, Buffer, RCCounters} {
		if b.EnergyJ[c] <= 0 {
			t.Errorf("component %v has no energy", c)
		}
	}
	if b.LeakageW <= 0 {
		t.Error("leakage missing")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	var b Breakdown
	b.Seconds = 2
	b.EnergyJ[DataRead] = 6
	b.EnergyJ[DataWrite] = 2
	b.LeakageW = 0.5
	if got := b.DynamicEnergyJ(); got != 8 {
		t.Errorf("DynamicEnergyJ = %v, want 8", got)
	}
	if got := b.DynamicW(); got != 4 {
		t.Errorf("DynamicW = %v, want 4", got)
	}
	if got := b.TotalW(); got != 4.5 {
		t.Errorf("TotalW = %v, want 4.5", got)
	}
	if got := b.Share(DataRead); got != 0.75 {
		t.Errorf("Share = %v, want 0.75", got)
	}
}

func TestBreakdownZeroSafe(t *testing.T) {
	var b Breakdown
	if b.DynamicW() != 0 || b.TotalW() != 0 || b.Share(DataRead) != 0 {
		t.Error("zero breakdown should report zeros")
	}
	dyn, tot := b.NormalizedTo(Breakdown{})
	if dyn != 0 || tot != 0 {
		t.Error("normalizing against a zero reference should yield zeros")
	}
}

func TestSharesSumToOne(t *testing.T) {
	b := FromBanks([]core.Bank{makeBank(t)}, 0.001)
	sum := 0.0
	for _, c := range Components() {
		sum += b.Share(c)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
}

func TestNormalizedTo(t *testing.T) {
	var ref, b Breakdown
	ref.Seconds, b.Seconds = 1, 1
	ref.EnergyJ[DataRead] = 2
	ref.LeakageW = 2
	b.EnergyJ[DataRead] = 4
	b.LeakageW = 1
	dyn, tot := b.NormalizedTo(ref)
	if dyn != 2 {
		t.Errorf("dynamic ratio = %v, want 2", dyn)
	}
	if tot != 1.25 {
		t.Errorf("total ratio = %v, want 1.25", tot)
	}
}

func TestFormat(t *testing.T) {
	b := FromBanks([]core.Bank{makeBank(t)}, 0.001)
	s := b.Format()
	for _, want := range []string{"tag-access", "migration", "refresh", "dynamic", "leakage", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
}
