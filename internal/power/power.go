// Package power assembles the L2 power report of the evaluation from the
// banks' energy ledgers: a per-component dynamic breakdown (tag probes,
// data reads/writes, migrations, refreshes, buffers, retention counters),
// leakage, and totals, with normalization helpers for the Fig. 8b/8c
// presentation.
package power

import (
	"fmt"
	"strings"

	"sttllc/internal/core"
)

// Component identifies one dynamic-energy category.
type Component int

const (
	TagAccess Component = iota
	DataRead
	DataWrite
	Migration
	Refresh
	Buffer
	RCCounters
	numComponents
)

// String returns the component name.
func (c Component) String() string {
	switch c {
	case TagAccess:
		return "tag-access"
	case DataRead:
		return "data-read"
	case DataWrite:
		return "data-write"
	case Migration:
		return "migration"
	case Refresh:
		return "refresh"
	case Buffer:
		return "buffer"
	case RCCounters:
		return "rc-counters"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Components lists all categories in display order.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Breakdown is the assembled L2 power report for one run.
type Breakdown struct {
	// EnergyJ holds dynamic energy per component in joules.
	EnergyJ [numComponents]float64
	// LeakageW is static power in watts.
	LeakageW float64
	// Seconds is the simulated runtime the energies accrued over.
	Seconds float64
}

// FromBanks sums the energy ledgers and leakage of a bank group over a
// simulated runtime.
func FromBanks(banks []core.Bank, seconds float64) Breakdown {
	var b Breakdown
	b.Seconds = seconds
	for _, bank := range banks {
		e := bank.Energy()
		b.EnergyJ[TagAccess] += e.TagAccess
		b.EnergyJ[DataRead] += e.DataRead
		b.EnergyJ[DataWrite] += e.DataWrite
		b.EnergyJ[Migration] += e.Migration
		b.EnergyJ[Refresh] += e.Refresh
		b.EnergyJ[Buffer] += e.Buffer
		b.EnergyJ[RCCounters] += e.RCCounters
		b.LeakageW += bank.LeakageWatts()
	}
	return b
}

// DynamicEnergyJ returns total dynamic energy.
func (b Breakdown) DynamicEnergyJ() float64 {
	var t float64
	for _, e := range b.EnergyJ {
		t += e
	}
	return t
}

// DynamicW returns average dynamic power over the runtime.
func (b Breakdown) DynamicW() float64 {
	if b.Seconds <= 0 {
		return 0
	}
	return b.DynamicEnergyJ() / b.Seconds
}

// TotalW returns dynamic plus leakage power.
func (b Breakdown) TotalW() float64 {
	return b.DynamicW() + b.LeakageW
}

// Share returns the fraction of dynamic energy spent in component c
// (0 when no dynamic energy accrued).
func (b Breakdown) Share(c Component) float64 {
	total := b.DynamicEnergyJ()
	if total <= 0 {
		return 0
	}
	return b.EnergyJ[c] / total
}

// NormalizedTo returns (dynamic, total) power ratios against a reference
// breakdown, the Fig. 8b/8c presentation.
func (b Breakdown) NormalizedTo(ref Breakdown) (dynamic, total float64) {
	if d := ref.DynamicW(); d > 0 {
		dynamic = b.DynamicW() / d
	}
	if t := ref.TotalW(); t > 0 {
		total = b.TotalW() / t
	}
	return dynamic, total
}

// Format renders the breakdown as a text table.
func (b Breakdown) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %12s %8s\n", "component", "energy (uJ)", "share")
	for _, c := range Components() {
		fmt.Fprintf(&sb, "%-12s %12.3f %7.1f%%\n", c, b.EnergyJ[c]*1e6, b.Share(c)*100)
	}
	fmt.Fprintf(&sb, "%-12s %12.3f\n", "dynamic", b.DynamicEnergyJ()*1e6)
	fmt.Fprintf(&sb, "dynamic %.4f W + leakage %.4f W = total %.4f W over %.3f ms\n",
		b.DynamicW(), b.LeakageW, b.TotalW(), b.Seconds*1e3)
	return sb.String()
}
