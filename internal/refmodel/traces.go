package refmodel

import (
	"encoding/binary"
	"time"

	"sttllc/internal/trace"
)

// xorshift64star is a tiny deterministic PRNG so synthetic traces are
// reproducible from their seed alone.
type xorshift64star uint64

func (x *xorshift64star) next() uint64 {
	v := uint64(*x)
	if v == 0 {
		v = 0x9e3779b97f4a7c15
	}
	v ^= v >> 12
	v ^= v << 25
	v ^= v >> 27
	*x = xorshift64star(v)
	return v * 0x2545f4914f6cdd1d
}

// SyntheticTrace derives an n-record access stream from the seed. The
// seed also picks the stream's character — footprint, write fraction,
// hot-set size, burstiness, and how often the clock jumps far enough to
// cross retention boundaries — so a handful of seeds covers migration
// storms, refresh pressure, expiry, and MSHR merging.
func SyntheticTrace(seed uint64, n int) []trace.Record {
	rng := xorshift64star(seed)
	rng.next()

	lineBytes := uint64(256)
	// Footprint from 32 lines (heavy conflict) to 16K lines (streaming).
	footprint := uint64(32) << (rng.next() % 10)
	// Write fraction 1/8 .. 7/8.
	writeNum := 1 + rng.next()%7
	// A small hot set absorbs a fraction of accesses, exercising the WWS
	// monitor and migrations.
	hotLines := 1 + rng.next()%16
	hotNum := rng.next() % 8 // of 8
	// Typical inter-access gap, occasionally stretched by a long jump
	// whose magnitude is seed-chosen between 2^16 and 2^26 cycles: the
	// low end crosses LR refresh boundaries (1ms ~ 7e5 cycles at
	// 700MHz) after a few jumps, the high end crosses the HR retention
	// window (40ms ~ 2.8e7 cycles) in one.
	gapShift := rng.next() % 8 // mean gap 1..128 cycles
	jumpDenom := uint64(64 + rng.next()%192)
	jumpShift := 16 + rng.next()%11

	records := make([]trace.Record, n)
	now := int64(0)
	for i := range records {
		r := rng.next()
		gap := int64((r>>32)&((1<<gapShift)-1)) + 1
		if rng.next()%jumpDenom == 0 {
			gap += int64(rng.next() % (1 << jumpShift))
		}
		now += gap

		var line uint64
		if rng.next()%8 < hotNum {
			line = rng.next() % hotLines
		} else {
			line = rng.next() % footprint
		}
		records[i] = trace.Record{
			Cycle: now,
			Addr:  line * lineBytes,
			Write: rng.next()%8 < writeNum,
		}
	}
	return records
}

// Fuzz input limits: unbounded records or cycle spans would turn the
// reference model's full scans into a timeout, not a finding.
const (
	maxFuzzRecords   = 4096
	maxFuzzCycleSpan = int64(1) << 28
)

// DecodeFuzzTrace turns raw fuzzer bytes into an organization index and
// a bounded, cycle-ordered record stream. The format is delta-encoded so
// any byte string decodes to a valid trace: first byte picks the
// organization, then each record is a uvarint cycle delta, a uvarint
// line number, and a flag byte whose low bit is the write flag.
func DecodeFuzzTrace(data []byte, orgs int) (org int, records []trace.Record) {
	if len(data) == 0 {
		return 0, nil
	}
	org = int(data[0]) % orgs
	data = data[1:]

	lineBytes := uint64(256)
	now := int64(0)
	for len(data) > 0 && len(records) < maxFuzzRecords {
		delta, n := binary.Uvarint(data)
		if n <= 0 {
			break
		}
		data = data[n:]
		line, n := binary.Uvarint(data)
		if n <= 0 {
			break
		}
		data = data[n:]
		if len(data) == 0 {
			break
		}
		write := data[0]&1 != 0
		data = data[1:]

		now += int64(delta % uint64(maxFuzzCycleSpan/maxFuzzRecords))
		if now > maxFuzzCycleSpan {
			break
		}
		records = append(records, trace.Record{
			Cycle: now,
			Addr:  (line % (1 << 20)) * lineBytes,
			Write: write,
		})
	}
	return org, records
}

// fuzzRetentionLadder is the retention tiers fuzz-decoded transitions
// pick from: the C4 default ladder, so every fuzzed switch is one a
// validated configuration could actually perform (each tier is at or
// above the LR retention, keeping the tick cadence invariant).
var fuzzRetentionLadder = []time.Duration{
	10 * time.Millisecond, 40 * time.Millisecond, 160 * time.Millisecond,
}

// DecodeFuzzTransitions turns raw fuzzer bytes into an interleaved
// access stream and reconfiguration schedule for DiffTransitions. Any
// byte string decodes to a valid (records, transitions) pair: each
// item starts with a selector byte whose low two bits pick a record
// (3) or a transition kind (0-2); records then follow the
// DecodeFuzzTrace shape (uvarint cycle delta, uvarint line, flag
// byte), transitions a uvarint cycle delta and a uvarint operand
// (threshold, LR way bound, or retention-ladder index). Cycles share
// one monotone clock so both streams stay ordered.
func DecodeFuzzTransitions(data []byte) (records []trace.Record, trans []Transition) {
	lineBytes := uint64(256)
	now := int64(0)
	step := func() (int64, uint64, bool) {
		delta, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, 0, false
		}
		data = data[n:]
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, 0, false
		}
		data = data[n:]
		now += int64(delta % uint64(maxFuzzCycleSpan/maxFuzzRecords))
		return now, v, now <= maxFuzzCycleSpan
	}
	for len(data) > 0 && len(records)+len(trans) < maxFuzzRecords {
		sel := data[0]
		data = data[1:]
		if sel&3 == 3 {
			at, line, ok := step()
			if !ok || len(data) == 0 {
				break
			}
			write := data[0]&1 != 0
			data = data[1:]
			records = append(records, trace.Record{
				Cycle: at,
				Addr:  (line % (1 << 20)) * lineBytes,
				Write: write,
			})
			continue
		}
		at, v, ok := step()
		if !ok {
			break
		}
		t := Transition{Cycle: at, Kind: TransitionKind(sel & 3)}
		switch t.Kind {
		case TransThreshold:
			t.Threshold = uint8(v % 16)
		case TransLRWays:
			t.LRWays = int(v % 4)
		case TransRetention:
			t.Retention = fuzzRetentionLadder[v%uint64(len(fuzzRetentionLadder))]
		}
		trans = append(trans, t)
	}
	return records, trans
}
