// Differential replay with mid-run reconfiguration: the adaptive (C4)
// counterpart of Diff. A transition schedule — the same shape of
// SetWriteThreshold / SetLRActiveWays / SetHRRetention calls the
// online controller (internal/sim) emits — is applied to the optimized
// bank and its reference twin at identical cycles between accesses,
// and full state (stats, energy, array contents, invariants) is
// compared after every transition as well as after every access and
// retention boundary. This is what pins the transition API's semantics:
// any drift between the optimized demotion/expiry/realignment paths
// and the reference's obvious full-scan versions fails the replay at
// the first diverging field.
package refmodel

import (
	"fmt"
	"time"

	"sttllc/internal/core"
	"sttllc/internal/trace"
)

// TransitionKind selects which structural parameter a Transition sets.
type TransitionKind uint8

const (
	TransThreshold TransitionKind = iota // WWS migration threshold
	TransLRWays                          // LR active associativity
	TransRetention                       // HR retention tier
)

// Transition is one scheduled reconfiguration. Cycles must be
// non-decreasing within a schedule; transitions at a cycle are applied
// before any access at the same cycle (matching the simulator, where
// the epoch event on the timer engine fires before same-cycle SM
// work is visited).
type Transition struct {
	Cycle     int64
	Kind      TransitionKind
	Threshold uint8         // TransThreshold
	LRWays    int           // TransLRWays
	Retention time.Duration // TransRetention
}

// apply drives one transition into both sides and checks the applied
// (clamped) values agree.
func (t Transition) apply(opt *core.TwoPartBank, ref *RefTwoPart) error {
	switch t.Kind {
	case TransThreshold:
		o, r := opt.SetWriteThreshold(t.Cycle, t.Threshold), ref.SetWriteThreshold(t.Cycle, t.Threshold)
		if o != r {
			return fmt.Errorf("threshold transition applied differently: optimized %d, reference %d", o, r)
		}
	case TransLRWays:
		o, r := opt.SetLRActiveWays(t.Cycle, t.LRWays), ref.SetLRActiveWays(t.Cycle, t.LRWays)
		if o != r {
			return fmt.Errorf("LR-ways transition applied differently: optimized %d, reference %d", o, r)
		}
	case TransRetention:
		o, r := opt.SetHRRetention(t.Cycle, t.Retention), ref.SetHRRetention(t.Cycle, t.Retention)
		if o != r {
			return fmt.Errorf("retention transition applied differently: optimized %v, reference %v", o, r)
		}
	default:
		return fmt.Errorf("unknown transition kind %d", t.Kind)
	}
	return nil
}

// DiffTransitions replays records into both sides of a two-part pair
// like Diff, interleaving the transition schedule at its cycles, and
// fails on the first divergence. The pair must be a two-part
// organization (only those have a transition API); transitions must be
// sorted by cycle and every cycle must be at or before the last
// record's. Retention boundaries are driven at the bank's TickPeriod,
// which the transition ladder keeps invariant (hrTick >= lrTick for
// every legal tier), so the boundary sequence computed up front stays
// valid across retention switches.
func DiffTransitions(p Pair, records []trace.Record, trans []Transition) error {
	opt, ok := p.Opt.(*core.TwoPartBank)
	if !ok {
		return fmt.Errorf("%s: transitions require a two-part bank, got %T", p.Name, p.Opt)
	}
	ref, ok := p.Ref.(*RefTwoPart)
	if !ok {
		return fmt.Errorf("%s: transitions require a RefTwoPart reference, got %T", p.Name, p.Ref)
	}
	if err := trace.Validate(records); err != nil {
		return fmt.Errorf("%s: %w", p.Name, err)
	}
	for i := 1; i < len(trans); i++ {
		if trans[i].Cycle < trans[i-1].Cycle {
			return fmt.Errorf("%s: transition %d out of order (cycle %d after %d)",
				p.Name, i, trans[i].Cycle, trans[i-1].Cycle)
		}
	}

	period := p.Opt.TickPeriod()
	boundary := period
	ti := 0
	advance := func(to int64) error {
		// Interleave retention boundaries and due transitions in cycle
		// order, comparing state after each.
		for {
			nextB := int64(-1)
			if period > 0 && boundary <= to {
				nextB = boundary
			}
			nextT := int64(-1)
			if ti < len(trans) && trans[ti].Cycle <= to {
				nextT = trans[ti].Cycle
			}
			switch {
			case nextB < 0 && nextT < 0:
				return nil
			case nextT < 0 || (nextB >= 0 && nextB <= nextT):
				p.Opt.Tick(boundary)
				p.Ref.Tick(boundary)
				if err := compareAt(fmt.Sprintf("%s: tick boundary %d", p.Name, boundary), p, boundary); err != nil {
					return err
				}
				boundary += period
			default:
				t := trans[ti]
				ti++
				if err := t.apply(opt, ref); err != nil {
					return fmt.Errorf("%s: transition %d (cycle %d): %w", p.Name, ti-1, t.Cycle, err)
				}
				if err := compareAt(fmt.Sprintf("%s: transition %d (cycle %d)", p.Name, ti-1, t.Cycle), p, t.Cycle); err != nil {
					return err
				}
			}
		}
	}

	var end int64
	for i, rec := range records {
		if err := advance(rec.Cycle); err != nil {
			return err
		}
		optDone, optHit := p.Opt.Access(rec.Cycle, rec.Addr, rec.Write)
		refDone, refHit := p.Ref.Access(rec.Cycle, rec.Addr, rec.Write)
		ctx := fmt.Sprintf("%s: record %d (cycle %d addr %#x write %v)", p.Name, i, rec.Cycle, rec.Addr, rec.Write)
		if optDone != refDone || optHit != refHit {
			return fmt.Errorf("%s: done/hit diverged: optimized (%d, %v), reference (%d, %v)",
				ctx, optDone, optHit, refDone, refHit)
		}
		if err := compareAt(ctx, p, rec.Cycle); err != nil {
			return err
		}
		end = rec.Cycle
	}
	if err := advance(end); err != nil {
		return err
	}

	p.Opt.Tick(end)
	p.Ref.Tick(end)
	p.Opt.Drain(end)
	p.Ref.Drain(end)
	ctx := fmt.Sprintf("%s: final state (cycle %d)", p.Name, end)
	if err := compareAt(ctx, p, end); err != nil {
		return err
	}
	if p.OptMC.Stats != p.RefMC.Stats {
		return fmt.Errorf("%s: DRAM stats diverged: optimized %+v, reference %+v",
			ctx, p.OptMC.Stats, p.RefMC.Stats)
	}
	return nil
}
