package refmodel

import (
	"fmt"
	"time"

	"sttllc/internal/cache"
	"sttllc/internal/core"
	"sttllc/internal/sttram"
)

// Bank is the simulation surface a reference organization exposes to
// the differential harness: the same contract as core.Bank, minus the
// instrumentation hooks.
type Bank interface {
	Access(now int64, addr uint64, write bool) (done int64, hit bool)
	Tick(now int64)
	Drain(now int64)
	Stats() *core.BankStats
	Energy() *core.Energy
}

// ---- Timing and energy arithmetic, transcribed from the spec ----
//
// These constants and formulas restate DESIGN.md §1's timing model
// independently of internal/core; the differential tests are what tie
// the two transcriptions together.

// pipelineCycles is the array cycle time; writes additionally occupy
// their subarray for the part of the write latency exceeding a read.
const pipelineCycles = 2

// bufferInsertCycles is the foreground cost of handing a block to a
// swap buffer.
const bufferInsertCycles = 1

// subArrays is the number of independently occupied subarrays per data
// array.
const subArrays = 4

// rcEnergy is the cost of updating one retention counter: 0.05 pJ.
const rcEnergy = 0.05e-12

// cyclesOf converts a duration to cycles, rounding up, minimum 1.
func cyclesOf(d time.Duration, clockHz float64) int64 {
	c := int64(float64(d) * clockHz / float64(time.Second))
	if float64(c)*float64(time.Second)/clockHz < float64(d) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// usOf converts cycles to microseconds, rounding once.
func usOf(cycles int64, clockHz float64) float64 {
	return float64(cycles) * 1e6 / clockHz
}

// writeOccupancy is the subarray occupancy of one write pulse.
func writeOccupancy(readCy, writeCy int64) int64 {
	occ := pipelineCycles + (writeCy - readCy)
	if occ < pipelineCycles {
		occ = pipelineCycles
	}
	return occ
}

// tagBits is the width of one tag probe (all ways of a set, with 2
// state bits per way).
func tagBits(capacity, ways, lineBytes, addrBits int) int {
	sets := capacity / (ways * lineBytes)
	setBits := int(log2of(sets))
	offBits := int(log2of(lineBytes))
	return (addrBits - setBits - offBits + 2) * ways
}

func tagEnergy(bits int) float64 {
	return sttram.SRAMCell().ReadEnergyPerBit * float64(bits)
}

// ports serializes accesses on each of the four subarrays of one data
// array.
type ports [subArrays]int64

func (p *ports) acquire(addr uint64, lineBytes int, at, occ int64) int64 {
	i := (addr / uint64(lineBytes)) % subArrays
	start := at
	if p[i] > start {
		start = p[i]
	}
	p[i] = start + occ
	return start
}

// refSlot is one swap-buffer entry: the cycle its slot was granted and
// the cycle its background drain completes.
type refSlot struct {
	grant, done int64
}

// refSwapBuffer is the reference swap buffer. Unlike the optimized
// model it keeps every grant explicitly, so it can assert the paper's
// constraint — at most capacity blocks ever hold slots at once —
// directly on itself.
type refSwapBuffer struct {
	capacity int
	slots    []refSlot // grant order == completion order
	nextFree int64     // background port availability of the target array
}

func (b *refSwapBuffer) prune(now int64) {
	live := b.slots[:0]
	for _, s := range b.slots {
		if s.done > now {
			live = append(live, s)
		}
	}
	b.slots = live
}

// tryEnqueue takes a slot only if one is free at cycle now.
func (b *refSwapBuffer) tryEnqueue(now, serviceCycles int64) bool {
	b.prune(now)
	if len(b.slots) >= b.capacity {
		return false
	}
	b.insert(now, serviceCycles)
	return true
}

// enqueue takes a slot with backpressure: when all slots are held, the
// request waits for the oldest entry whose completion frees a slot not
// already promised to an earlier queued request.
func (b *refSwapBuffer) enqueue(now, serviceCycles int64) int64 {
	b.prune(now)
	grant := now
	if occ := len(b.slots); occ >= b.capacity {
		grant = b.slots[occ-b.capacity].done
	}
	b.insert(grant, serviceCycles)
	return grant
}

func (b *refSwapBuffer) insert(grant, serviceCycles int64) {
	// Self-check: at the grant cycle, the entries holding slots are
	// those already granted and not yet drained; there must be room.
	held := 0
	for _, s := range b.slots {
		if s.grant <= grant && s.done > grant {
			held++
		}
	}
	if held >= b.capacity {
		panic(fmt.Sprintf("refmodel: swap buffer over capacity: %d slots held at grant cycle %d (capacity %d)",
			held, grant, b.capacity))
	}
	start := grant
	if b.nextFree > start {
		start = b.nextFree
	}
	done := start + serviceCycles
	b.nextFree = done
	b.slots = append(b.slots, refSlot{grant: grant, done: done})
}

// writeback sends a dirty line to the tier's backing store (DRAM, or
// the next reference tier down a chained stack).
func writeback(mc core.Backing, now int64, addr uint64, s *core.BankStats) {
	mc.Access(now, addr, true)
	s.DRAMWritebacks++
}

// refBacking adapts a reference bank into the backing-store contract,
// mirroring core.AsBacking: reference tiers chain exactly like the
// optimized ones, with the hit flag dropped at the seam.
type refBacking struct{ b Bank }

func (l refBacking) Access(now int64, addr uint64, write bool) int64 {
	done, _ := l.b.Access(now, addr, write)
	return done
}

// AsBacking wraps a reference bank so another reference tier can stack
// on top of it.
func AsBacking(b Bank) core.Backing { return refBacking{b} }

// ---- Reference two-part bank ----

// RefTwoPart is the reference model of the paper's two-part LR/HR bank.
type RefTwoPart struct {
	cfg core.TwoPartConfig
	lr  *refCache
	hr  *refCache
	mc  core.Backing

	lrReadCy, lrWriteCy int64
	hrReadCy, hrWriteCy int64
	lrReadE, lrWriteE   float64
	hrReadE, hrWriteE   float64
	lrTagE, hrTagE      float64
	bufE                float64

	lrRetCy, hrRetCy   int64
	lrTickCy, hrTickCy int64
	lastLRScan         int64
	lastHRScan         int64

	threshold     uint8
	winOverflows  uint64
	winMigrations uint64

	// hrCell is the currently installed HR cell (cfg.HRCell until a
	// SetHRRetention transition switches tiers), mirroring the optimized
	// bank's reconfiguration state.
	hrCell sttram.Cell

	hr2lr *refSwapBuffer
	lr2hr *refSwapBuffer

	frontNextFree int64
	lrPorts       ports
	hrPorts       ports
	msh           map[uint64]int64 // block addr -> fill completion cycle

	lrWriteOcc int64
	hrWriteOcc int64

	// rewriteFloor mirrors TwoPartBank.rewriteFloor: first-write
	// timestamps below it contribute no rewrite-interval sample.
	rewriteFloor int64

	stats  core.BankStats
	energy core.Energy
}

// NewTwoPart builds the reference two-part bank for the given
// (normalized or not) configuration. Only LRU replacement is specified.
func NewTwoPart(cfg core.TwoPartConfig, mc core.Backing) *RefTwoPart {
	cfg = cfg.Normalized()
	if cfg.Replacement != cache.LRU {
		panic("refmodel: only LRU replacement is specified")
	}
	b := &RefTwoPart{
		cfg:       cfg,
		lr:        newRefCache(cfg.LRBytes, cfg.LRWays, cfg.LineBytes),
		hr:        newRefCache(cfg.HRBytes, cfg.HRWays, cfg.LineBytes),
		mc:        mc,
		lrReadCy:  cyclesOf(cfg.LRCell.ReadLatency, cfg.ClockHz),
		lrWriteCy: cyclesOf(cfg.LRCell.WriteLatency, cfg.ClockHz),
		hrReadCy:  cyclesOf(cfg.HRCell.ReadLatency, cfg.ClockHz),
		hrWriteCy: cyclesOf(cfg.HRCell.WriteLatency, cfg.ClockHz),
		lrReadE:   cfg.LRCell.EnergyPerBlock(cfg.LineBytes, false),
		lrWriteE:  cfg.LRCell.EnergyPerBlock(cfg.LineBytes, true),
		hrReadE:   cfg.HRCell.EnergyPerBlock(cfg.LineBytes, false),
		hrWriteE:  cfg.HRCell.EnergyPerBlock(cfg.LineBytes, true),
		lrTagE:    tagEnergy(tagBits(cfg.LRBytes, cfg.LRWays, cfg.LineBytes, cfg.AddrBits)),
		hrTagE:    tagEnergy(tagBits(cfg.HRBytes, cfg.HRWays, cfg.LineBytes, cfg.AddrBits)),
		bufE:      sttram.SRAMCell().EnergyPerBlock(cfg.LineBytes, true),
		hr2lr:     &refSwapBuffer{capacity: cfg.BufferBlocks},
		lr2hr:     &refSwapBuffer{capacity: cfg.BufferBlocks},
		msh:       map[uint64]int64{},
		threshold: cfg.WriteThreshold,
		hrCell:    cfg.HRCell,
	}
	b.lrWriteOcc = writeOccupancy(b.lrReadCy, b.lrWriteCy)
	b.hrWriteOcc = writeOccupancy(b.hrReadCy, b.hrWriteCy)
	b.lrRetCy = cyclesOf(cfg.LRCell.Retention, cfg.ClockHz)
	b.hrRetCy = cyclesOf(cfg.HRCell.Retention, cfg.ClockHz)
	b.lrTickCy = b.lrRetCy >> uint(cfg.LRCounterBits)
	b.hrTickCy = b.hrRetCy >> uint(cfg.HRCounterBits)
	if b.lrTickCy < 1 {
		b.lrTickCy = 1
	}
	if b.hrTickCy < 1 {
		b.hrTickCy = 1
	}
	b.stats.RewriteIntervals = core.NewRewriteHistogram()
	return b
}

// frontStart serializes request entry (one per cycle).
func (b *RefTwoPart) frontStart(now int64) int64 {
	start := now
	if b.frontNextFree > start {
		start = b.frontNextFree
	}
	b.frontNextFree = start + 1
	return start
}

// probeCost charges tag energy for the given number of sequential tag
// probes (or both arrays at once under ParallelSearch) and returns the
// probe latency.
func (b *RefTwoPart) probeCost(probes int) int64 {
	if b.cfg.ParallelSearch {
		b.energy.TagAccess += b.lrTagE + b.hrTagE
		return b.cfg.TagLatencyCycles
	}
	if probes >= 2 {
		b.energy.TagAccess += b.lrTagE + b.hrTagE
	} else {
		b.energy.TagAccess += b.lrTagE
	}
	return int64(probes) * b.cfg.TagLatencyCycles
}

// Access implements Bank.
func (b *RefTwoPart) Access(now int64, addr uint64, write bool) (int64, bool) {
	b.Tick(now)
	if write {
		b.stats.Writes++
		return b.accessWrite(now, addr)
	}
	b.stats.Reads++
	return b.accessRead(now, addr)
}

func (b *RefTwoPart) accessWrite(now int64, addr uint64) (int64, bool) {
	start := b.frontStart(now)

	// Writes search the LR part first.
	if set, way, hit := b.lr.probe(addr); hit {
		at := start + b.probeCost(1)
		if last := b.lr.lines[set][way].lastWrite; last >= b.rewriteFloor {
			b.stats.RewriteIntervals.Add(usOf(now-last, b.cfg.ClockHz))
		}
		b.lr.accessAt(set, way, true, now)
		b.stats.WriteHits++
		b.stats.LRWriteHits++
		b.energy.DataWrite += b.lrWriteE
		return b.lrPorts.acquire(addr, b.cfg.LineBytes, at, b.lrWriteOcc) + b.lrWriteCy, true
	}

	if set, way, hit := b.hr.probe(addr); hit {
		at := start + b.probeCost(2)
		b.hr.accessAt(set, way, true, now)
		b.stats.WriteHits++
		b.stats.HRWriteHits++
		if !b.cfg.DisableMigration && b.hr.lines[set][way].wrCount >= b.threshold {
			// Migrate HR -> LR through the swap buffer; the store is
			// acknowledged at the buffer handoff.
			slotAt := b.hr2lr.enqueue(now, b.lrWriteOcc)
			if slotAt > at {
				at = slotAt
			}
			b.hrPorts.acquire(addr, b.cfg.LineBytes, at, pipelineCycles)
			done := at + bufferInsertCycles
			ev := b.hr.invalidateWay(set, way)
			b.stats.MigrationsToLR++
			b.energy.Migration += b.hrReadE + b.lrWriteE
			b.energy.Buffer += b.bufE
			b.fillLR(now, ev.addr, true)
			return done, true
		}
		b.stats.HRWriteKept++
		b.energy.DataWrite += b.hrWriteE
		return b.hrPorts.acquire(addr, b.cfg.LineBytes, at, b.hrWriteOcc) + b.hrWriteCy, true
	}

	// Write miss: allocate without fetch.
	at := start + b.probeCost(2)
	if !b.cfg.DisableMigration && 1 >= b.threshold {
		slotAt := b.hr2lr.enqueue(now, b.lrWriteOcc)
		if slotAt > at {
			at = slotAt
		}
		done := at + bufferInsertCycles
		b.stats.LRWriteFills++
		b.energy.DataWrite += b.lrWriteE
		b.energy.Buffer += b.bufE
		b.fillLR(now, b.lr.blockAddr(addr), true)
		return done, false
	}
	b.stats.HRWriteFills++
	b.energy.DataWrite += b.hrWriteE
	done := b.hrPorts.acquire(addr, b.cfg.LineBytes, at, b.hrWriteOcc) + b.hrWriteCy
	if ev, evicted := b.hr.fill(addr, true, now); evicted && ev.dirty {
		b.energy.DataRead += b.hrReadE
		writeback(b.mc, now, ev.addr, &b.stats)
	}
	return done, false
}

func (b *RefTwoPart) accessRead(now int64, addr uint64) (int64, bool) {
	start := b.frontStart(now)

	// Reads search the HR part first.
	if set, way, hit := b.hr.probe(addr); hit {
		at := start + b.probeCost(1)
		b.hr.accessAt(set, way, false, now)
		b.stats.ReadHits++
		b.stats.HRReadHits++
		b.energy.DataRead += b.hrReadE
		return b.hrPorts.acquire(addr, b.cfg.LineBytes, at, pipelineCycles) + b.hrReadCy, true
	}
	if set, way, hit := b.lr.probe(addr); hit {
		at := start + b.probeCost(2)
		b.lr.accessAt(set, way, false, now)
		b.stats.ReadHits++
		b.stats.LRReadHits++
		b.energy.DataRead += b.lrReadE
		return b.lrPorts.acquire(addr, b.cfg.LineBytes, at, pipelineCycles) + b.lrReadCy, true
	}

	// Read miss: fetch from DRAM into HR; merge onto in-flight fills.
	at := start + b.probeCost(2)
	blk := b.hr.blockAddr(addr)
	if fillDone, ok := b.msh[blk]; ok {
		if fillDone > at {
			return fillDone + b.hrReadCy, false
		}
		delete(b.msh, blk) // completed fill: behaves as absent
	}
	dramDone := b.mc.Access(at, addr, false)
	b.msh[blk] = dramDone
	b.stats.DRAMFills++
	b.energy.DataWrite += b.hrWriteE
	if ev, evicted := b.hr.fill(addr, false, now); evicted && ev.dirty {
		b.energy.DataRead += b.hrReadE
		writeback(b.mc, now, ev.addr, &b.stats)
	}
	return dramDone + b.hrReadCy, false
}

// fillLR installs a block into LR, returning any victim to HR.
func (b *RefTwoPart) fillLR(now int64, addr uint64, dirty bool) {
	ev, evicted := b.lr.fill(addr, dirty, now)
	if !evicted {
		return
	}
	b.returnToHR(now, ev)
}

// returnToHR moves an LR victim back into HR through the LR->HR buffer,
// or forces it out to DRAM when the buffer is full.
func (b *RefTwoPart) returnToHR(now int64, ev refEvicted) {
	if !b.lr2hr.tryEnqueue(now, b.hrWriteOcc) {
		if ev.dirty {
			writeback(b.mc, now, ev.addr, &b.stats)
			b.stats.OverflowWritebacks++
		}
		return
	}
	b.stats.EvictionsToHR++
	b.energy.Migration += b.lrReadE + b.hrWriteE
	b.energy.Buffer += b.bufE
	if hrEv, evicted := b.hr.fill(ev.addr, ev.dirty, now); evicted && hrEv.dirty {
		b.energy.DataRead += b.hrReadE
		writeback(b.mc, now, hrEv.addr, &b.stats)
	}
}

// Tick advances retention bookkeeping: due scans run merged in
// boundary-time order, LR before HR on ties.
func (b *RefTwoPart) Tick(now int64) {
	for {
		nextLR := b.lastLRScan + b.lrTickCy
		nextHR := b.lastHRScan + b.hrTickCy
		if nextLR > now && nextHR > now {
			return
		}
		if nextLR <= nextHR {
			b.lastLRScan = nextLR
			b.scanLR(nextLR)
		} else {
			b.lastHRScan = nextHR
			b.scanHR(nextHR)
		}
	}
}

// scanLR is the full-array LR retention scan: a line is due in the last
// counter window before its retention boundary; due lines refresh
// through the LR->HR buffer or, when the buffer is full, are dropped
// (dirty drops are forced to DRAM).
func (b *RefTwoPart) scanLR(now int64) {
	if b.cfg.AdaptiveThreshold {
		b.adaptThreshold()
	}
	b.energy.RCCounters += rcEnergy * float64(b.lr.validLines())
	var refresh, drop [][2]int
	for set := range b.lr.lines {
		for way := range b.lr.lines[set] {
			l := &b.lr.lines[set][way]
			if !l.valid {
				continue
			}
			if now-l.retStamp >= b.lrRetCy-b.lrTickCy {
				if b.lr2hr.tryEnqueue(now, b.lrWriteOcc) {
					refresh = append(refresh, [2]int{set, way})
				} else {
					drop = append(drop, [2]int{set, way})
				}
			}
		}
	}
	for _, sw := range refresh {
		b.lr.lines[sw[0]][sw[1]].retStamp = now
		b.stats.Refreshes++
		b.energy.Refresh += b.lrReadE + b.lrWriteE
		b.energy.Buffer += b.bufE
	}
	for _, sw := range drop {
		ev := b.lr.invalidateWay(sw[0], sw[1])
		if ev.dirty {
			writeback(b.mc, now, ev.addr, &b.stats)
			b.stats.OverflowWritebacks++
		}
		b.stats.LRExpiryDrops++
	}
}

// scanHR is the full-array HR retention scan: lines past the HR
// retention are invalidated, dirty ones written back.
func (b *RefTwoPart) scanHR(now int64) {
	b.energy.RCCounters += rcEnergy * float64(b.hr.validLines())
	var expired [][2]int
	for set := range b.hr.lines {
		for way := range b.hr.lines[set] {
			l := &b.hr.lines[set][way]
			if !l.valid {
				continue
			}
			if now-l.retStamp >= b.hrRetCy {
				expired = append(expired, [2]int{set, way})
			}
		}
	}
	for _, sw := range expired {
		ev := b.hr.invalidateWay(sw[0], sw[1])
		if ev.dirty {
			writeback(b.mc, now, ev.addr, &b.stats)
		}
		b.stats.HRExpiries++
	}
}

// adaptThreshold retunes the write threshold once per LR window.
func (b *RefTwoPart) adaptThreshold() {
	overflows := b.stats.OverflowWritebacks - b.winOverflows
	migrations := (b.stats.MigrationsToLR + b.stats.LRWriteFills) - b.winMigrations
	b.winOverflows = b.stats.OverflowWritebacks
	b.winMigrations = b.stats.MigrationsToLR + b.stats.LRWriteFills
	switch {
	case migrations > 0 && overflows*8 > migrations && b.threshold < 15:
		b.threshold = b.threshold*2 + 1
		if b.threshold > 15 {
			b.threshold = 15
		}
		b.stats.ThresholdRaises++
	case overflows == 0 && b.threshold > b.cfg.WriteThreshold:
		b.threshold--
		b.stats.ThresholdLowers++
	}
}

// ---- Online reconfiguration (mirrors internal/core/reconfig.go) ----
//
// Each transition is a line-for-line transcription of the optimized
// bank's: pending scans first, then exactly one structural change, with
// displaced lines demoted through the ordinary paths in (set, way)
// order. The reference has no expiry wheel, so a retention switch needs
// no re-marking — but it must apply the same scan-clock realignment,
// or the two models' scan boundaries (and therefore every later expiry)
// diverge.

// SetWriteThreshold mirrors TwoPartBank.SetWriteThreshold.
func (b *RefTwoPart) SetWriteThreshold(now int64, th uint8) uint8 {
	b.Tick(now)
	if th < b.cfg.WriteThreshold {
		th = b.cfg.WriteThreshold
	}
	if th > 15 {
		th = 15
	}
	if th == b.threshold {
		return th
	}
	b.threshold = th
	b.stats.ReconfigThreshold++
	return th
}

// SetLRActiveWays mirrors TwoPartBank.SetLRActiveWays.
func (b *RefTwoPart) SetLRActiveWays(now int64, n int) int {
	b.Tick(now)
	if n < 1 {
		n = 1
	}
	if n > b.cfg.LRWays {
		n = b.cfg.LRWays
	}
	cur := b.lr.activeWays
	if n == cur {
		return n
	}
	if n < cur {
		for set := 0; set < b.lr.sets; set++ {
			for way := n; way < cur; way++ {
				if !b.lr.lines[set][way].valid {
					continue
				}
				ev := b.lr.invalidateWay(set, way)
				b.returnToHR(now, ev)
				b.stats.ReconfigDemotions++
			}
		}
	}
	b.lr.activeWays = n
	b.stats.ReconfigLRResize++
	return n
}

// SetHRRetention mirrors TwoPartBank.SetHRRetention: run pending scans,
// recompute the HR cell's derived parameters, realign the HR scan clock
// to a multiple of the new counter window, and expire lines already
// over the new retention age.
func (b *RefTwoPart) SetHRRetention(now int64, ret time.Duration) time.Duration {
	b.Tick(now)
	if ret == b.hrCell.Retention {
		return ret
	}
	cell := sttram.NewCell(fmt.Sprintf("HR-%v", ret), ret)
	b.hrCell = cell
	b.hrReadCy = cyclesOf(cell.ReadLatency, b.cfg.ClockHz)
	b.hrWriteCy = cyclesOf(cell.WriteLatency, b.cfg.ClockHz)
	b.hrReadE = cell.EnergyPerBlock(b.cfg.LineBytes, false)
	b.hrWriteE = cell.EnergyPerBlock(b.cfg.LineBytes, true)
	b.hrWriteOcc = writeOccupancy(b.hrReadCy, b.hrWriteCy)
	b.hrRetCy = cyclesOf(cell.Retention, b.cfg.ClockHz)
	b.hrTickCy = b.hrRetCy >> uint(b.cfg.HRCounterBits)
	if b.hrTickCy < 1 {
		b.hrTickCy = 1
	}
	b.lastHRScan = now - now%b.hrTickCy
	var expired [][2]int
	for set := range b.hr.lines {
		for way := range b.hr.lines[set] {
			l := &b.hr.lines[set][way]
			if l.valid && now-l.retStamp >= b.hrRetCy {
				expired = append(expired, [2]int{set, way})
			}
		}
	}
	for _, sw := range expired {
		ev := b.hr.invalidateWay(sw[0], sw[1])
		if ev.dirty {
			writeback(b.mc, now, ev.addr, &b.stats)
		}
		b.stats.HRExpiries++
	}
	b.stats.ReconfigRetention++
	return ret
}

// Drain implements Bank.
func (b *RefTwoPart) Drain(now int64) {
	b.lr.flushDirty(func(addr uint64) { writeback(b.mc, now, addr, &b.stats) })
	b.hr.flushDirty(func(addr uint64) { writeback(b.mc, now, addr, &b.stats) })
}

// RebaseRewriteClock mirrors TwoPartBank.RebaseRewriteClock.
func (b *RefTwoPart) RebaseRewriteClock(boundary int64) { b.rewriteFloor = boundary }

// Stats implements Bank.
func (b *RefTwoPart) Stats() *core.BankStats { return &b.stats }

// Energy implements Bank.
func (b *RefTwoPart) Energy() *core.Energy { return &b.energy }

// ---- Reference uniform bank ----

// RefUniform is the reference model of the conventional
// single-technology bank (the SRAM and archival STT-RAM baselines).
type RefUniform struct {
	cfg core.UniformConfig
	arr *refCache
	mc  core.Backing

	readCy, writeCy int64
	readE, writeE   float64
	tagE            float64

	front int64
	arr2  ports
	msh   map[uint64]int64

	// rewriteFloor mirrors UniformBank.rewriteFloor.
	rewriteFloor int64

	stats  core.BankStats
	energy core.Energy
}

// NewUniform builds the reference uniform bank.
func NewUniform(cfg core.UniformConfig, mc core.Backing) *RefUniform {
	if cfg.TagLatencyCycles <= 0 {
		cfg.TagLatencyCycles = 2
	}
	if cfg.AddrBits == 0 {
		cfg.AddrBits = 32
	}
	if cfg.Replacement != cache.LRU {
		panic("refmodel: only LRU replacement is specified")
	}
	b := &RefUniform{
		cfg:     cfg,
		arr:     newRefCache(cfg.CapacityBytes, cfg.Ways, cfg.LineBytes),
		mc:      mc,
		readCy:  cyclesOf(cfg.Cell.ReadLatency, cfg.ClockHz),
		writeCy: cyclesOf(cfg.Cell.WriteLatency, cfg.ClockHz),
		readE:   cfg.Cell.EnergyPerBlock(cfg.LineBytes, false),
		writeE:  cfg.Cell.EnergyPerBlock(cfg.LineBytes, true),
		tagE:    tagEnergy(tagBits(cfg.CapacityBytes, cfg.Ways, cfg.LineBytes, cfg.AddrBits)),
		msh:     map[uint64]int64{},
	}
	b.stats.RewriteIntervals = core.NewRewriteHistogram()
	return b
}

// Access implements Bank.
func (b *RefUniform) Access(now int64, addr uint64, write bool) (int64, bool) {
	if write {
		b.stats.Writes++
	} else {
		b.stats.Reads++
	}
	start := now
	if b.front > start {
		start = b.front
	}
	b.front = start + 1
	at := start + b.cfg.TagLatencyCycles
	b.energy.TagAccess += b.tagE

	set, way, hit := b.arr.probe(addr)
	if hit {
		if write && b.arr.lines[set][way].dirty {
			if last := b.arr.lines[set][way].lastWrite; last >= b.rewriteFloor {
				b.stats.RewriteIntervals.Add(usOf(now-last, b.cfg.ClockHz))
			}
		}
		b.arr.accessAt(set, way, write, now)
		if write {
			b.stats.WriteHits++
			b.energy.DataWrite += b.writeE
			occ := writeOccupancy(b.readCy, b.writeCy)
			return b.arr2.acquire(addr, b.cfg.LineBytes, at, occ) + b.writeCy, true
		}
		b.stats.ReadHits++
		b.energy.DataRead += b.readE
		return b.arr2.acquire(addr, b.cfg.LineBytes, at, pipelineCycles) + b.readCy, true
	}

	if write {
		occ := writeOccupancy(b.readCy, b.writeCy)
		arrAt := b.arr2.acquire(addr, b.cfg.LineBytes, at, occ)
		b.fill(addr, true, now)
		b.energy.DataWrite += b.writeE
		return arrAt + b.writeCy, false
	}
	line := b.arr.blockAddr(addr)
	if fillDone, ok := b.msh[line]; ok {
		if fillDone > at {
			return fillDone + b.readCy, false
		}
		delete(b.msh, line)
	}
	dramDone := b.mc.Access(at, addr, false)
	b.msh[line] = dramDone
	b.stats.DRAMFills++
	b.fill(addr, false, now)
	b.energy.DataWrite += b.writeE
	return dramDone + b.readCy, false
}

func (b *RefUniform) fill(addr uint64, dirty bool, now int64) {
	if ev, evicted := b.arr.fill(addr, dirty, now); evicted && ev.dirty {
		b.energy.DataRead += b.readE
		writeback(b.mc, now, ev.addr, &b.stats)
	}
}

// Tick implements Bank: no retention bookkeeping.
func (b *RefUniform) Tick(int64) {}

// Drain implements Bank.
func (b *RefUniform) Drain(now int64) {
	b.arr.flushDirty(func(addr uint64) { writeback(b.mc, now, addr, &b.stats) })
}

// RebaseRewriteClock mirrors UniformBank.RebaseRewriteClock.
func (b *RefUniform) RebaseRewriteClock(boundary int64) { b.rewriteFloor = boundary }

// Stats implements Bank.
func (b *RefUniform) Stats() *core.BankStats { return &b.stats }

// Energy implements Bank.
func (b *RefUniform) Energy() *core.Energy { return &b.energy }
