package refmodel

import (
	"testing"
)

// FuzzDifferential feeds fuzzer-shaped traces through the differential
// harness: any byte string decodes to a valid bounded trace
// (DecodeFuzzTrace), the first byte picks the organization, and any
// divergence between the optimized bank and the reference model fails.
// The committed corpus in testdata/fuzz/FuzzDifferential seeds the
// search and doubles as a regression suite: it replays on every plain
// `go test` run.
func FuzzDifferential(f *testing.F) {
	orgs := Organizations()

	// Store burst into C2: six back-to-back write misses allocate into
	// LR through the HR->LR buffer and pile up backpressure — the
	// access pattern that exposed the swap-buffer slot double-grant
	// (every stalled request was granted the same freed slot).
	burst := []byte{1}
	for line := byte(1); line <= 6; line++ {
		burst = append(burst, 1, line, 1)
	}
	f.Add(burst)

	// Read-heavy stream with reuse: MSHR merging and HR hit paths.
	reads := []byte{2}
	for i := byte(0); i < 24; i++ {
		reads = append(reads, 2, i%5, 0)
	}
	f.Add(reads)

	// Alternating read/write over a small hot set on C1: migrations and
	// LR victim returns.
	mixed := []byte{0}
	for i := byte(0); i < 32; i++ {
		mixed = append(mixed, 3, i%7, i&1)
	}
	f.Add(mixed)

	f.Fuzz(func(t *testing.T, data []byte) {
		org, records := DecodeFuzzTrace(data, len(orgs))
		if len(records) == 0 {
			t.Skip("no records decoded")
		}
		if err := Diff(orgs[org].New(), records); err != nil {
			t.Fatal(err)
		}
	})
}
