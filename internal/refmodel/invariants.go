package refmodel

import (
	"fmt"
	"math"
	"reflect"

	"sttllc/internal/cache"
	"sttllc/internal/core"
)

// CheckTier verifies the structural invariants of a live optimized tier
// at cycle now — any level of a hierarchy chain, since every tier is a
// bank. The retention-window bounds assume the tier's Tick has been
// advanced to now (Access does this internally, so checking right after
// an Access or an explicit Tick is always valid). Unknown tier types
// pass vacuously.
func CheckTier(b core.Bank, now int64) error {
	switch b := b.(type) {
	case *core.TwoPartBank:
		return checkTwoPart(b, now)
	case *core.UniformBank:
		return checkUniform(b, now)
	}
	return nil
}

// CheckBank is the historical name for CheckTier, kept for callers that
// predate hierarchy chaining.
func CheckBank(b core.Bank, now int64) error { return CheckTier(b, now) }

func checkTwoPart(b *core.TwoPartBank, now int64) error {
	if err := checkTwoPartConservation(b.Stats()); err != nil {
		return err
	}
	if err := checkEnergy(b.Energy()); err != nil {
		return err
	}
	if err := checkHistogram(b.Stats()); err != nil {
		return err
	}
	if n := b.Stats().RewriteIntervals.N; n > b.Stats().LRWriteHits {
		return fmt.Errorf("rewrite-interval samples (%d) exceed LR write hits (%d)", n, b.Stats().LRWriteHits)
	}
	if err := checkDirtySubsetValid("LR", b.LRArray()); err != nil {
		return err
	}
	if err := checkDirtySubsetValid("HR", b.HRArray()); err != nil {
		return err
	}
	if err := checkDisjoint(b.LRArray(), b.HRArray()); err != nil {
		return err
	}
	lrRet, hrRet := b.RetentionCycles()
	_, hrTick := b.TickCycles()
	// After a scan at boundary t, every surviving LR line was refreshed
	// (stamp = t) or was younger than lrRet-lrTick; by the next boundary
	// its age is below lrRet. HR lines expire at age >= hrRet, checked at
	// boundaries, so between boundaries age stays below hrRet+hrTick.
	if err := checkRetention("LR", b.LRArray(), now, lrRet); err != nil {
		return err
	}
	if err := checkRetention("HR", b.HRArray(), now, hrRet+hrTick); err != nil {
		return err
	}
	if err := b.CheckSwapBuffers(now); err != nil {
		return err
	}
	if err := checkSwapOccupancy(b, now); err != nil {
		return err
	}
	return checkThreshold(b)
}

func checkUniform(b *core.UniformBank, now int64) error {
	s := b.Stats()
	if err := checkCommonConservation(s); err != nil {
		return err
	}
	for name, v := range map[string]uint64{
		"LRReadHits": s.LRReadHits, "LRWriteHits": s.LRWriteHits,
		"LRWriteFills": s.LRWriteFills, "HRReadHits": s.HRReadHits,
		"HRWriteHits": s.HRWriteHits, "HRWriteKept": s.HRWriteKept,
		"HRWriteFills": s.HRWriteFills, "MigrationsToLR": s.MigrationsToLR,
		"EvictionsToHR": s.EvictionsToHR, "Refreshes": s.Refreshes,
		"LRExpiryDrops": s.LRExpiryDrops, "HRExpiries": s.HRExpiries,
		"OverflowWritebacks": s.OverflowWritebacks,
		"ThresholdRaises":    s.ThresholdRaises, "ThresholdLowers": s.ThresholdLowers,
		"ReconfigThreshold": s.ReconfigThreshold, "ReconfigLRResize": s.ReconfigLRResize,
		"ReconfigRetention": s.ReconfigRetention, "ReconfigDemotions": s.ReconfigDemotions,
	} {
		if v != 0 {
			return fmt.Errorf("uniform bank counted two-part event %s=%d", name, v)
		}
	}
	if err := checkEnergy(b.Energy()); err != nil {
		return err
	}
	e := b.Energy()
	for name, v := range map[string]float64{
		"Migration": e.Migration, "Refresh": e.Refresh,
		"Buffer": e.Buffer, "RCCounters": e.RCCounters,
	} {
		if v != 0 {
			return fmt.Errorf("uniform bank charged two-part energy %s=%g", name, v)
		}
	}
	if err := checkHistogram(s); err != nil {
		return err
	}
	if n := s.RewriteIntervals.N; n > s.WriteHits {
		return fmt.Errorf("rewrite-interval samples (%d) exceed write hits (%d)", n, s.WriteHits)
	}
	return checkDirtySubsetValid("uniform", b.Array())
}

// checkCommonConservation holds for every bank organization.
func checkCommonConservation(s *core.BankStats) error {
	if s.ReadHits > s.Reads {
		return fmt.Errorf("read hits (%d) exceed reads (%d)", s.ReadHits, s.Reads)
	}
	if s.WriteHits > s.Writes {
		return fmt.Errorf("write hits (%d) exceed writes (%d)", s.WriteHits, s.Writes)
	}
	if s.DRAMFills > s.Reads-s.ReadHits {
		return fmt.Errorf("DRAM fills (%d) exceed read misses (%d)", s.DRAMFills, s.Reads-s.ReadHits)
	}
	if s.OverflowWritebacks > s.DRAMWritebacks {
		return fmt.Errorf("overflow writebacks (%d) exceed DRAM writebacks (%d)", s.OverflowWritebacks, s.DRAMWritebacks)
	}
	return nil
}

// checkTwoPartConservation verifies that every arriving access is
// accounted for exactly once by the per-part counters.
func checkTwoPartConservation(s *core.BankStats) error {
	if err := checkCommonConservation(s); err != nil {
		return err
	}
	if got := s.WriteHits + s.LRWriteFills + s.HRWriteFills; got != s.Writes {
		return fmt.Errorf("writes not conserved: hits+fills=%d, writes=%d", got, s.Writes)
	}
	if got := s.LRWriteHits + s.HRWriteHits; got != s.WriteHits {
		return fmt.Errorf("write hits not conserved: LR+HR=%d, total=%d", got, s.WriteHits)
	}
	if got := s.HRWriteKept + s.MigrationsToLR; got != s.HRWriteHits {
		return fmt.Errorf("HR write hits not conserved: kept+migrated=%d, total=%d", got, s.HRWriteHits)
	}
	if got := s.LRReadHits + s.HRReadHits; got != s.ReadHits {
		return fmt.Errorf("read hits not conserved: LR+HR=%d, total=%d", got, s.ReadHits)
	}
	return nil
}

// checkEnergy verifies every ledger component is a finite, non-negative
// number of joules.
func checkEnergy(e *core.Energy) error {
	for name, v := range energyComponents(e) {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("energy component %s is %g J", name, v)
		}
	}
	return nil
}

// checkHistogram verifies the rewrite-interval histogram's internal
// count conservation.
func checkHistogram(s *core.BankStats) error {
	h := s.RewriteIntervals
	if h == nil {
		return nil
	}
	var sum uint64
	for _, c := range h.Counts {
		sum += c
	}
	if sum+h.Overflow != h.N {
		return fmt.Errorf("histogram counts not conserved: buckets+overflow=%d, N=%d", sum+h.Overflow, h.N)
	}
	return nil
}

// checkDirtySubsetValid verifies no invalid line is marked dirty.
func checkDirtySubsetValid(name string, c *cache.Cache) error {
	for set := 0; set < c.Sets(); set++ {
		for wi := 0; wi < c.MaskWords(); wi++ {
			if extra := c.DirtyWord(set, wi) &^ c.ValidWord(set, wi); extra != 0 {
				return fmt.Errorf("%s array set %d: dirty bits %#x set on invalid ways", name, set, extra)
			}
		}
	}
	return nil
}

// checkDisjoint verifies no block is resident in both parts at once.
func checkDisjoint(lr, hr *cache.Cache) error {
	resident := make(map[uint64]struct{})
	lr.Range(func(set, way int, l cache.Line) {
		resident[lr.AddrOf(set, l.Tag)] = struct{}{}
	})
	var err error
	hr.Range(func(set, way int, l cache.Line) {
		if err != nil {
			return
		}
		addr := hr.AddrOf(set, l.Tag)
		if _, ok := resident[addr]; ok {
			err = fmt.Errorf("block %#x resident in both LR and HR", addr)
		}
	})
	return err
}

// checkRetention verifies every valid line's age against the bound the
// scan discipline guarantees at cycle now.
func checkRetention(name string, c *cache.Cache, now, bound int64) error {
	var err error
	c.Range(func(set, way int, l cache.Line) {
		if err != nil {
			return
		}
		if age := now - l.RetentionStamp; age >= bound {
			err = fmt.Errorf("%s line (%d,%d) aged %d cycles at cycle %d, bound %d",
				name, set, way, age, now, bound)
		}
	})
	return err
}

// checkSwapOccupancy verifies neither buffer holds more entries than it
// has slots once completed drains are pruned at cycle now. (Transient
// backpressure reservations beyond capacity live in the pending list but
// hold slots only after earlier drains complete; occupancy counts them,
// so the live total is bounded by capacity plus queued stalls — the
// structural per-slot bound is enforced by CheckSwapBuffers.)
func checkSwapOccupancy(b *core.TwoPartBank, now int64) error {
	hr2lr, lr2hr := b.SwapOccupancy(now)
	if hr2lr < 0 || lr2hr < 0 {
		return fmt.Errorf("negative swap-buffer occupancy hr2lr=%d lr2hr=%d", hr2lr, lr2hr)
	}
	return nil
}

// checkThreshold verifies the WWS threshold stays in the paper's 4-bit
// range and never drops below the configured floor.
func checkThreshold(b *core.TwoPartBank) error {
	th := b.Threshold()
	cfg := b.Config()
	if th > 15 {
		return fmt.Errorf("write threshold %d exceeds 4-bit range", th)
	}
	if th < cfg.WriteThreshold {
		return fmt.Errorf("write threshold %d below configured floor %d", th, cfg.WriteThreshold)
	}
	if !cfg.AdaptiveThreshold && !b.ThresholdManaged() && th != cfg.WriteThreshold {
		return fmt.Errorf("static threshold drifted: %d, configured %d", th, cfg.WriteThreshold)
	}
	return nil
}

// statCounters flattens the uint64 fields of BankStats by name, for
// monotonicity checks and differential comparison.
func statCounters(s *core.BankStats) map[string]uint64 {
	out := map[string]uint64{}
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if f := v.Field(i); f.Kind() == reflect.Uint64 {
			out[t.Field(i).Name] = f.Uint()
		}
	}
	if h := s.RewriteIntervals; h != nil {
		out["RewriteIntervals.N"] = h.N
		out["RewriteIntervals.Overflow"] = h.Overflow
		for i, c := range h.Counts {
			out[fmt.Sprintf("RewriteIntervals.Counts[%d]", i)] = c
		}
	}
	return out
}

// energyComponents flattens the float64 fields of Energy by name.
func energyComponents(e *core.Energy) map[string]float64 {
	out := map[string]float64{}
	v := reflect.ValueOf(e).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if f := v.Field(i); f.Kind() == reflect.Float64 {
			out[t.Field(i).Name] = f.Float()
		}
	}
	return out
}

// Checker is a stateful invariant checker: on top of CheckBank it
// verifies that statistics counters and energy components only grow
// between observations. A coordinated decrease (every counter at or
// below its previous value) is treated as a stats reset — the warmup
// boundary — and rebases the baseline instead of failing.
type Checker struct {
	prevStats  map[string]uint64
	prevEnergy map[string]float64
}

// NewChecker returns a Checker with no history; the first observation
// only records a baseline.
func NewChecker() *Checker { return &Checker{} }

// Observe runs CheckBank and the monotonicity checks at cycle now.
func (c *Checker) Observe(b core.Bank, now int64) error {
	if err := CheckBank(b, now); err != nil {
		return err
	}
	curStats := statCounters(b.Stats())
	curEnergy := energyComponents(b.Energy())
	defer func() {
		c.prevStats = curStats
		c.prevEnergy = curEnergy
	}()
	if c.prevStats == nil {
		return nil
	}
	if isStatsReset(curStats, c.prevStats) {
		return nil
	}
	for name, prev := range c.prevStats {
		if cur := curStats[name]; cur < prev {
			return fmt.Errorf("counter %s went backwards: %d -> %d", name, prev, cur)
		}
	}
	for name, prev := range c.prevEnergy {
		if cur := curEnergy[name]; cur < prev {
			return fmt.Errorf("energy component %s went backwards: %g -> %g", name, prev, cur)
		}
	}
	return nil
}

// isStatsReset reports whether the observation looks like ResetStats
// ran between the two snapshots: at least one counter decreased. The
// per-observation CheckBank identities still hold on the new baseline,
// so rebasing loses no checking power.
func isStatsReset(cur, prev map[string]uint64) bool {
	for name, p := range prev {
		if cur[name] < p {
			return true
		}
	}
	return false
}
