package refmodel

import (
	"bytes"
	"testing"

	"sttllc/internal/config"
	"sttllc/internal/core"
	"sttllc/internal/sim"
	"sttllc/internal/trace"
	"sttllc/internal/workloads"
)

// TestDifferentialSeededTraces is the harness's core guarantee: every
// organization replays a spread of synthetic traces with zero
// divergence between the optimized banks and the reference model.
func TestDifferentialSeededTraces(t *testing.T) {
	const seeds = 24
	const records = 600
	for _, org := range Organizations() {
		org := org
		t.Run(org.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= seeds; seed++ {
				recs := SyntheticTrace(seed, records)
				if err := Diff(org.New(), recs); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestSeededTracesExerciseMechanisms guards the synthetic generator
// against degenerating into streams that never reach the paper's
// mechanisms: across the seed set, the two-part bank must see
// migrations, LR victims returning to HR, refreshes, expiries in both
// parts, buffer-full overflow writebacks, MSHR-mergeable misses, and
// rewrite-interval samples — otherwise the zero-divergence result of
// TestDifferentialSeededTraces would be vacuous.
func TestSeededTracesExerciseMechanisms(t *testing.T) {
	org := orgByName(t, "C2")
	total := core.BankStats{RewriteIntervals: core.NewRewriteHistogram()}
	for seed := uint64(1); seed <= 24; seed++ {
		p := org.New()
		var end int64
		for _, rec := range SyntheticTrace(seed, 600) {
			p.Opt.Access(rec.Cycle, rec.Addr, rec.Write)
			end = rec.Cycle
		}
		p.Opt.Tick(end)
		p.Opt.Drain(end)
		s := p.Opt.Stats()
		for name, v := range statCounters(s) {
			_ = name
			_ = v
		}
		total.MigrationsToLR += s.MigrationsToLR
		total.EvictionsToHR += s.EvictionsToHR
		total.Refreshes += s.Refreshes
		total.LRExpiryDrops += s.LRExpiryDrops
		total.HRExpiries += s.HRExpiries
		total.OverflowWritebacks += s.OverflowWritebacks
		total.DRAMFills += s.DRAMFills
		total.DRAMWritebacks += s.DRAMWritebacks
		total.RewriteIntervals.N += s.RewriteIntervals.N
	}
	checks := map[string]uint64{
		"MigrationsToLR":     total.MigrationsToLR,
		"EvictionsToHR":      total.EvictionsToHR,
		"Refreshes":          total.Refreshes,
		"HRExpiries":         total.HRExpiries,
		"OverflowWritebacks": total.OverflowWritebacks,
		"DRAMFills":          total.DRAMFills,
		"DRAMWritebacks":     total.DRAMWritebacks,
		"RewriteIntervals":   total.RewriteIntervals.N,
	}
	for name, v := range checks {
		if v == 0 {
			t.Errorf("seed set never exercised %s", name)
		}
	}
	t.Logf("aggregate mechanism coverage: %+v, LRExpiryDrops=%d", checks, total.LRExpiryDrops)
}

// TestDifferentialRecordedTrace replays an access stream recorded from
// a live simulation — realistic arrival patterns rather than synthetic
// ones — through every organization.
func TestDifferentialRecordedTrace(t *testing.T) {
	spec, ok := workloads.ByName("bfs")
	if !ok {
		t.Fatal("bfs missing from suite")
	}
	spec = spec.Scale(0.02)
	spec.WarpsPerSM = 2

	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	sim.RunOne(config.C2(), spec, sim.Options{TraceWriter: w})
	if err := w.Flush(); err != nil {
		t.Fatalf("flush trace: %v", err)
	}
	recs, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("recorded trace is empty")
	}
	if len(recs) > 20000 {
		recs = recs[:20000]
	}
	for _, org := range Organizations() {
		org := org
		t.Run(org.Name, func(t *testing.T) {
			if err := Diff(org.New(), recs); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckerAcrossResetStats verifies the stateful checker treats a
// warmup-boundary stats reset as a rebase, not a monotonicity failure.
func TestCheckerAcrossResetStats(t *testing.T) {
	p := orgByName(t, "C2").New()
	recs := SyntheticTrace(7, 200)
	ck := NewChecker()
	for i, rec := range recs {
		p.Opt.Access(rec.Cycle, rec.Addr, rec.Write)
		if err := ck.Observe(p.Opt, rec.Cycle); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if i == 100 {
			p.Opt.ResetStats()
			if err := ck.Observe(p.Opt, rec.Cycle); err != nil {
				t.Fatalf("observe after reset: %v", err)
			}
		}
	}
}

// TestConservationViolations feeds crafted inconsistent statistics to
// the conservation checks.
func TestConservationViolations(t *testing.T) {
	base := func() *core.BankStats {
		return &core.BankStats{
			Reads: 10, Writes: 10, ReadHits: 6, WriteHits: 7,
			LRReadHits: 2, HRReadHits: 4,
			LRWriteHits: 3, HRWriteHits: 4,
			HRWriteKept: 1, MigrationsToLR: 3,
			LRWriteFills: 2, HRWriteFills: 1,
			DRAMFills: 4, DRAMWritebacks: 2, OverflowWritebacks: 1,
			RewriteIntervals: core.NewRewriteHistogram(),
		}
	}
	if err := checkTwoPartConservation(base()); err != nil {
		t.Fatalf("consistent stats rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*core.BankStats)
	}{
		{"lost write", func(s *core.BankStats) { s.Writes++ }},
		{"phantom read hit", func(s *core.BankStats) { s.LRReadHits++; s.ReadHits++; s.Reads = s.ReadHits - 1 }},
		{"unsplit write hit", func(s *core.BankStats) { s.LRWriteHits-- }},
		{"unsplit HR write hit", func(s *core.BankStats) { s.HRWriteKept++ }},
		{"unsplit read hit", func(s *core.BankStats) { s.HRReadHits-- }},
		{"phantom DRAM fill", func(s *core.BankStats) { s.DRAMFills = s.Reads - s.ReadHits + 1 }},
		{"phantom overflow writeback", func(s *core.BankStats) { s.OverflowWritebacks = s.DRAMWritebacks + 1 }},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		if err := checkTwoPartConservation(s); err == nil {
			t.Errorf("%s: violation not detected", tc.name)
		}
	}
}

// TestHistogramViolation crafts a histogram whose buckets do not sum to
// its sample count.
func TestHistogramViolation(t *testing.T) {
	s := &core.BankStats{RewriteIntervals: core.NewRewriteHistogram()}
	s.RewriteIntervals.Add(3)
	s.RewriteIntervals.Add(9000)
	if err := checkHistogram(s); err != nil {
		t.Fatalf("consistent histogram rejected: %v", err)
	}
	s.RewriteIntervals.N++
	if err := checkHistogram(s); err == nil {
		t.Error("dropped sample not detected")
	}
}

// TestEnergyViolation crafts a negative energy ledger entry.
func TestEnergyViolation(t *testing.T) {
	e := &core.Energy{TagAccess: 1e-12, DataWrite: 2e-12}
	if err := checkEnergy(e); err != nil {
		t.Fatalf("valid ledger rejected: %v", err)
	}
	e.Refresh = -1e-15
	if err := checkEnergy(e); err == nil {
		t.Error("negative energy not detected")
	}
}

// TestRetentionViolation verifies the age-bound helper flags a line that
// outlived its window.
func TestRetentionViolation(t *testing.T) {
	p := orgByName(t, "C2").New()
	b := p.Opt.(*core.TwoPartBank)
	b.Access(0, 0x100, true) // fills LR at threshold 1
	if err := checkRetention("LR", b.LRArray(), 10, 100); err != nil {
		t.Fatalf("fresh line rejected: %v", err)
	}
	if err := checkRetention("LR", b.LRArray(), 200, 100); err == nil {
		t.Error("expired line not detected")
	}
}

// TestCheckBankOnLiveBanks runs the full checker over live banks after
// every access of a busy trace.
func TestCheckBankOnLiveBanks(t *testing.T) {
	for _, org := range Organizations() {
		org := org
		t.Run(org.Name, func(t *testing.T) {
			p := org.New()
			for i, rec := range SyntheticTrace(3, 400) {
				p.Opt.Access(rec.Cycle, rec.Addr, rec.Write)
				if err := CheckBank(p.Opt, rec.Cycle); err != nil {
					t.Fatalf("record %d: %v", i, err)
				}
			}
		})
	}
}

// TestSyntheticTraceShape pins the generator's contract: deterministic
// per seed, cycle-ordered, line-aligned.
func TestSyntheticTraceShape(t *testing.T) {
	a := SyntheticTrace(42, 300)
	b := SyntheticTrace(42, 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d not deterministic: %+v vs %+v", i, a[i], b[i])
		}
	}
	last := int64(-1)
	for i, r := range a {
		if r.Cycle < last {
			t.Fatalf("record %d: cycle %d before %d", i, r.Cycle, last)
		}
		last = r.Cycle
		if r.Addr%256 != 0 {
			t.Fatalf("record %d: address %#x not line-aligned", i, r.Addr)
		}
	}
}

// TestDecodeFuzzTraceBounds pins the fuzz decoder's safety bounds.
func TestDecodeFuzzTraceBounds(t *testing.T) {
	if org, recs := DecodeFuzzTrace(nil, 3); org != 0 || recs != nil {
		t.Fatalf("empty input decoded to org %d, %d records", org, len(recs))
	}
	data := []byte{2}
	for i := 0; i < 3*maxFuzzRecords; i++ {
		data = append(data, 1, 1, 1) // delta 1, line 1, write
	}
	org, recs := DecodeFuzzTrace(data, 3)
	if org != 2 {
		t.Fatalf("org = %d, want 2", org)
	}
	if len(recs) > maxFuzzRecords {
		t.Fatalf("decoded %d records, cap is %d", len(recs), maxFuzzRecords)
	}
	last := int64(-1)
	for i, r := range recs {
		if r.Cycle < last || r.Cycle > maxFuzzCycleSpan {
			t.Fatalf("record %d: cycle %d out of order or beyond span", i, r.Cycle)
		}
		last = r.Cycle
	}
}

// TestStatCountersCoverHistogram guards the reflection flattener: if a
// counter field changes type or the histogram is renamed, comparisons
// would silently skip it.
func TestStatCountersCoverHistogram(t *testing.T) {
	s := &core.BankStats{RewriteIntervals: core.NewRewriteHistogram()}
	s.Reads = 3
	s.RewriteIntervals.Add(2)
	c := statCounters(s)
	if c["Reads"] != 3 {
		t.Errorf("Reads not flattened: %v", c)
	}
	if c["RewriteIntervals.N"] != 1 {
		t.Errorf("histogram N not flattened: %v", c)
	}
	if _, ok := c["RewriteIntervals.Counts[1]"]; !ok {
		t.Errorf("histogram buckets not flattened: %v", c)
	}
}

func orgByName(t *testing.T, name string) Org {
	t.Helper()
	for _, org := range Organizations() {
		if org.Name == name {
			return org
		}
	}
	t.Fatalf("organization %s not defined", name)
	return Org{}
}
