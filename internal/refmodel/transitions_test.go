package refmodel

import (
	"encoding/binary"
	"testing"
	"time"

	"sttllc/internal/config"
	"sttllc/internal/core"
)

// c4Pair builds a fresh C4 differential pair (structurally C2's bank;
// the transition schedule is what makes it adaptive).
func c4Pair() Pair {
	g := config.C4()
	optMC, refMC := g.NewDRAM(), g.NewDRAM()
	opt := g.NewBank(optMC).(*core.TwoPartBank)
	return Pair{
		Name:  g.Name,
		Opt:   opt,
		Ref:   NewTwoPart(opt.Config(), refMC),
		OptMC: optMC,
		RefMC: refMC,
	}
}

// adaptiveSchedule spreads the full transition repertoire across a
// trace span: a threshold raise, an LR shrink to one way (the forced
// LR-share shrink), a retention step down, an LR grow back, a
// retention step up, and a threshold relaxation — every kind of
// transition the C4 controller can emit, in both directions.
func adaptiveSchedule(span int64) []Transition {
	at := func(num int64) int64 { return span * num / 8 }
	return []Transition{
		{Cycle: at(1), Kind: TransThreshold, Threshold: 3},
		{Cycle: at(2), Kind: TransLRWays, LRWays: 1},
		{Cycle: at(3), Kind: TransRetention, Retention: 10 * time.Millisecond},
		{Cycle: at(4), Kind: TransLRWays, LRWays: 2},
		{Cycle: at(5), Kind: TransRetention, Retention: 160 * time.Millisecond},
		{Cycle: at(6), Kind: TransThreshold, Threshold: 1},
	}
}

// TestDiffTransitionsSeeded replays synthetic traces through the C4
// pair with the full transition schedule interleaved, comparing the
// optimized bank against the reference after every access, retention
// boundary, and transition.
func TestDiffTransitionsSeeded(t *testing.T) {
	for _, seed := range []uint64{3, 17, 40, 77, 101} {
		records := SyntheticTrace(seed, 1200)
		span := records[len(records)-1].Cycle
		if err := DiffTransitions(c4Pair(), records, adaptiveSchedule(span)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestTransitionCounterConservation pins the bookkeeping of a known
// schedule: every effective transition bumps exactly one Reconfig
// counter, no-op calls bump none, and shrink demotions are bounded by
// the LR geometry and conserved into the ordinary LR->HR return-path
// counters.
func TestTransitionCounterConservation(t *testing.T) {
	p := c4Pair()
	records := SyntheticTrace(40, 1500)
	span := records[len(records)-1].Cycle
	sched := adaptiveSchedule(span)
	// Append no-op calls: re-setting the current values must not count.
	sched = append(sched,
		Transition{Cycle: span * 7 / 8, Kind: TransThreshold, Threshold: 1},
		Transition{Cycle: span * 7 / 8, Kind: TransLRWays, LRWays: 2},
		Transition{Cycle: span * 7 / 8, Kind: TransRetention, Retention: 160 * time.Millisecond},
	)
	if err := DiffTransitions(p, records, sched); err != nil {
		t.Fatal(err)
	}
	opt := p.Opt.(*core.TwoPartBank)
	st := opt.Stats()
	if st.ReconfigThreshold != 2 {
		t.Errorf("ReconfigThreshold = %d, want 2 (raise + relax; no-op excluded)", st.ReconfigThreshold)
	}
	if st.ReconfigLRResize != 2 {
		t.Errorf("ReconfigLRResize = %d, want 2 (shrink + grow; no-op excluded)", st.ReconfigLRResize)
	}
	if st.ReconfigRetention != 2 {
		t.Errorf("ReconfigRetention = %d, want 2 (down + up; no-op excluded)", st.ReconfigRetention)
	}
	lrSets := opt.LRArray().Sets()
	if st.ReconfigDemotions > uint64(lrSets) {
		t.Errorf("ReconfigDemotions = %d exceeds one shrink's bound of %d (one deactivated way x %d sets)",
			st.ReconfigDemotions, lrSets, lrSets)
	}
	// Every demoted line took the ordinary return path: granted a swap
	// buffer slot (EvictionsToHR) or overflowed to a writeback/drop.
	if st.ReconfigDemotions > st.EvictionsToHR+st.OverflowWritebacks+st.LRExpiryDrops {
		t.Errorf("ReconfigDemotions = %d not conserved into return-path counters (%d+%d+%d)",
			st.ReconfigDemotions, st.EvictionsToHR, st.OverflowWritebacks, st.LRExpiryDrops)
	}
	if st.ReconfigDemotions == 0 {
		t.Error("ReconfigDemotions = 0: the forced LR shrink demoted nothing; schedule no longer forces a shrink")
	}
	if opt.LRActiveWays() != 2 {
		t.Errorf("LRActiveWays = %d after grow-back, want 2", opt.LRActiveWays())
	}
	if got := opt.HRRetention(); got != 160*time.Millisecond {
		t.Errorf("HRRetention = %v after final switch, want 160ms", got)
	}
	if !opt.ThresholdManaged() {
		t.Error("ThresholdManaged = false after threshold transitions")
	}
}

// FuzzAdaptiveTransitions drives fuzzer-shaped interleavings of
// accesses and reconfigurations through the C4 differential pair: any
// byte string decodes to a valid bounded (trace, schedule) pair, and
// any divergence between the optimized transition paths and the
// reference's full-scan versions fails.
func FuzzAdaptiveTransitions(f *testing.F) {
	uv := func(b []byte, vs ...uint64) []byte {
		for _, v := range vs {
			b = binary.AppendUvarint(b, v)
		}
		return b
	}
	// Writes into a small hot set, then an LR shrink, more writes, and
	// a retention step down: the shrink demotes live dirty lines and the
	// switch re-times the survivors.
	var s1 []byte
	for i := uint64(0); i < 8; i++ {
		s1 = append(uv(append(s1, 3), 40, i%3), 1)
	}
	s1 = uv(append(s1, byte(TransLRWays)), 100, 1)
	for i := uint64(0); i < 8; i++ {
		s1 = append(uv(append(s1, 3), 40, i%3), 1)
	}
	s1 = uv(append(s1, byte(TransRetention)), 100, 0)
	f.Add(s1)

	// Threshold sweep around reads: raise mid-stream, relax at the end.
	var s2 []byte
	s2 = uv(append(s2, byte(TransThreshold)), 10, 5)
	for i := uint64(0); i < 12; i++ {
		s2 = append(uv(append(s2, 3), 60, i%5), 0)
	}
	s2 = uv(append(s2, byte(TransThreshold)), 10, 1)
	f.Add(s2)

	// Retention ladder walk with long gaps so expiry interacts with the
	// switches.
	var s3 []byte
	for i, tier := range []uint64{0, 2, 1} {
		s3 = append(uv(append(s3, 3), 50000, uint64(i)), 1)
		s3 = uv(append(s3, byte(TransRetention)), 50000, tier)
	}
	f.Add(s3)

	f.Fuzz(func(t *testing.T, data []byte) {
		records, trans := DecodeFuzzTransitions(data)
		if len(records) == 0 {
			t.Skip("no records decoded")
		}
		if err := DiffTransitions(c4Pair(), records, trans); err != nil {
			t.Fatal(err)
		}
	})
}
