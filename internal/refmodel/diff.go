package refmodel

import (
	"fmt"
	"reflect"

	"sttllc/internal/cache"
	"sttllc/internal/config"
	"sttllc/internal/core"
	"sttllc/internal/dram"
	"sttllc/internal/trace"
)

// Pair is one optimized bank and its reference twin, each with a
// private DRAM channel of identical configuration so timing feedback
// through the memory controller is part of the comparison. For stacked
// hierarchies, OptL3/RefL3 carry the tier between the bank and DRAM;
// the harness then compares both levels of both stacks.
type Pair struct {
	Name  string
	Opt   core.Bank
	Ref   Bank
	OptL3 core.Bank // nil for two-level organizations
	RefL3 Bank      // nil iff OptL3 is nil
	OptMC *dram.Controller
	RefMC *dram.Controller
}

// Org names a bank organization the differential harness can
// instantiate fresh for each trace.
type Org struct {
	Name string
	New  func() Pair
}

// Organizations returns the bank organizations the harness replays:
// the proposed two-part bank at the paper's C1 and C2 sizings, the
// uniform archival STT-RAM baseline, and the stacked two-tier C2-L3
// hierarchy (two-part L2 chained onto a uniform STT-MRAM L3).
func Organizations() []Org {
	twoPart := func(g config.GPUConfig) Pair {
		optMC, refMC := g.NewDRAM(), g.NewDRAM()
		opt := g.NewBank(optMC).(*core.TwoPartBank)
		return Pair{
			Name:  g.Name,
			Opt:   opt,
			Ref:   NewTwoPart(opt.Config(), refMC),
			OptMC: optMC,
			RefMC: refMC,
		}
	}
	uniform := func(g config.GPUConfig) Pair {
		optMC, refMC := g.NewDRAM(), g.NewDRAM()
		opt := g.NewBank(optMC).(*core.UniformBank)
		return Pair{
			Name:  g.Name,
			Opt:   opt,
			Ref:   NewUniform(opt.Config(), refMC),
			OptMC: optMC,
			RefMC: refMC,
		}
	}
	stacked := func(g config.GPUConfig) Pair {
		optMC, refMC := g.NewDRAM(), g.NewDRAM()
		tiers, err := g.NewTiers(optMC)
		if err != nil {
			panic(err)
		}
		opt := tiers[0].(*core.TwoPartBank)
		optL3 := tiers[1].(*core.UniformBank)
		// Mirror the chain on the reference side: a reference L3 on the
		// reference DRAM channel, and a reference L2 whose miss path
		// drains into it.
		refL3 := NewUniform(optL3.Config(), refMC)
		return Pair{
			Name:  g.Name,
			Opt:   opt,
			Ref:   NewTwoPart(opt.Config(), AsBacking(refL3)),
			OptL3: optL3,
			RefL3: refL3,
			OptMC: optMC,
			RefMC: refMC,
		}
	}
	return []Org{
		{Name: "C1", New: func() Pair { return twoPart(config.C1()) }},
		{Name: "C2", New: func() Pair { return twoPart(config.C2()) }},
		{Name: "baseline-STT", New: func() Pair { return uniform(config.BaselineSTT()) }},
		{Name: "C2-L3", New: func() Pair { return stacked(config.C2L3()) }},
		// C4's bank is structurally C2's; what the differential harness
		// adds for it is the transition path (DiffTransitions applies the
		// controller's reconfigurations to both sides mid-trace).
		{Name: "C4", New: func() Pair { return twoPart(config.C4()) }},
	}
}

// Diff replays the records into both sides of the pair and fails on the
// first divergence: per-access completion time or hit/miss, statistics,
// the energy ledger, array contents at every retention boundary and at
// the end, DRAM controller activity, or an invariant violation on the
// optimized side. Record cycles must be non-decreasing.
func Diff(p Pair, records []trace.Record) error {
	if err := trace.Validate(records); err != nil {
		return fmt.Errorf("%s: %w", p.Name, err)
	}
	period := p.Opt.TickPeriod()
	var boundary int64
	if period > 0 {
		boundary = period
	}
	var end int64
	for i, rec := range records {
		// Drive both sides' retention bookkeeping explicitly at every
		// boundary up to the access, comparing state at each: this is
		// where the expiry wheel is cross-checked against the
		// reference's full scan.
		for period > 0 && boundary <= rec.Cycle {
			p.Opt.Tick(boundary)
			p.Ref.Tick(boundary)
			if err := compareAt(fmt.Sprintf("%s: tick boundary %d", p.Name, boundary), p, boundary); err != nil {
				return err
			}
			boundary += period
		}

		optDone, optHit := p.Opt.Access(rec.Cycle, rec.Addr, rec.Write)
		refDone, refHit := p.Ref.Access(rec.Cycle, rec.Addr, rec.Write)
		ctx := fmt.Sprintf("%s: record %d (cycle %d addr %#x write %v)", p.Name, i, rec.Cycle, rec.Addr, rec.Write)
		if optDone != refDone || optHit != refHit {
			return fmt.Errorf("%s: done/hit diverged: optimized (%d, %v), reference (%d, %v)",
				ctx, optDone, optHit, refDone, refHit)
		}
		if err := compareAt(ctx, p, rec.Cycle); err != nil {
			return err
		}
		end = rec.Cycle
	}

	// Final settle: one last tick at the last access cycle, then drain
	// dirty state top-down (an upper tier's final writebacks land in the
	// tier below before that one drains), then compare everything
	// including array contents and the DRAM channels.
	p.Opt.Tick(end)
	p.Ref.Tick(end)
	p.Opt.Drain(end)
	p.Ref.Drain(end)
	if p.OptL3 != nil {
		p.OptL3.Tick(end)
		p.RefL3.Tick(end)
		p.OptL3.Drain(end)
		p.RefL3.Drain(end)
	}
	ctx := fmt.Sprintf("%s: final state (cycle %d)", p.Name, end)
	if err := compareAt(ctx, p, end); err != nil {
		return err
	}
	if p.OptMC.Stats != p.RefMC.Stats {
		return fmt.Errorf("%s: DRAM stats diverged: optimized %+v, reference %+v",
			ctx, p.OptMC.Stats, p.RefMC.Stats)
	}
	return nil
}

// compareAt checks stats, energy, array contents, and the optimized
// side's invariants at cycle now, on every tier of the pair.
func compareAt(ctx string, p Pair, now int64) error {
	if err := compareTierAt(ctx, p.Opt, p.Ref, now); err != nil {
		return err
	}
	if p.OptL3 != nil {
		return compareTierAt(ctx+" [l3]", p.OptL3, p.RefL3, now)
	}
	return nil
}

func compareTierAt(ctx string, opt core.Bank, ref Bank, now int64) error {
	if err := compareStats(ctx, opt.Stats(), ref.Stats()); err != nil {
		return err
	}
	if err := compareEnergy(ctx, opt.Energy(), ref.Energy()); err != nil {
		return err
	}
	if err := compareContent(ctx, opt, ref); err != nil {
		return err
	}
	return CheckTier(opt, now)
}

// compareStats requires every counter — including the rewrite-interval
// histogram — to match exactly.
func compareStats(ctx string, opt, ref *core.BankStats) error {
	oc, rc := statCounters(opt), statCounters(ref)
	for name, ov := range oc {
		if rv := rc[name]; ov != rv {
			return fmt.Errorf("%s: stat %s diverged: optimized %d, reference %d", ctx, name, ov, rv)
		}
	}
	if !reflect.DeepEqual(opt.RewriteIntervals, ref.RewriteIntervals) {
		return fmt.Errorf("%s: rewrite-interval histogram diverged: optimized %+v, reference %+v",
			ctx, opt.RewriteIntervals, ref.RewriteIntervals)
	}
	return nil
}

// compareEnergy requires bit-identical energy: the reference transcribes
// the spec's accumulation order, so any float difference is a real
// modeling divergence, not roundoff noise.
func compareEnergy(ctx string, opt, ref *core.Energy) error {
	oc, rc := energyComponents(opt), energyComponents(ref)
	for name, ov := range oc {
		if rv := rc[name]; ov != rv {
			return fmt.Errorf("%s: energy %s diverged: optimized %.18g J, reference %.18g J", ctx, name, ov, rv)
		}
	}
	return nil
}

// compareContent requires every line of every array to match: tags,
// valid/dirty state, write counters, stamps, and wear.
func compareContent(ctx string, optBank core.Bank, refBank Bank) error {
	switch opt := optBank.(type) {
	case *core.TwoPartBank:
		ref := refBank.(*RefTwoPart)
		if err := compareArray(ctx, "LR", opt.LRArray(), ref.lr); err != nil {
			return err
		}
		return compareArray(ctx, "HR", opt.HRArray(), ref.hr)
	case *core.UniformBank:
		ref := refBank.(*RefUniform)
		return compareArray(ctx, "uniform", opt.Array(), ref.arr)
	}
	return fmt.Errorf("%s: unknown optimized bank type %T", ctx, optBank)
}

func compareArray(ctx, name string, opt *cache.Cache, ref *refCache) error {
	if opt.Sets() != ref.sets || opt.Ways != ref.ways {
		return fmt.Errorf("%s: %s array geometry mismatch: optimized %dx%d, reference %dx%d",
			ctx, name, opt.Sets(), opt.Ways, ref.sets, ref.ways)
	}
	for set := 0; set < ref.sets; set++ {
		for way := 0; way < ref.ways; way++ {
			ol := opt.LineAt(set, way)
			rl := &ref.lines[set][way]
			mismatch := func(field string, o, r interface{}) error {
				return fmt.Errorf("%s: %s line (%d,%d) %s diverged: optimized %v, reference %v",
					ctx, name, set, way, field, o, r)
			}
			if ol.Valid != rl.valid {
				return mismatch("valid", ol.Valid, rl.valid)
			}
			if !rl.valid {
				continue
			}
			if ol.Tag != rl.tag {
				return mismatch("tag", ol.Tag, rl.tag)
			}
			if ol.Dirty != rl.dirty {
				return mismatch("dirty", ol.Dirty, rl.dirty)
			}
			if ol.WriteCount != rl.wrCount {
				return mismatch("write count", ol.WriteCount, rl.wrCount)
			}
			if ol.LastWriteCycle != rl.lastWrite {
				return mismatch("last-write cycle", ol.LastWriteCycle, rl.lastWrite)
			}
			if ol.RetentionStamp != rl.retStamp {
				return mismatch("retention stamp", ol.RetentionStamp, rl.retStamp)
			}
			if got := opt.UseStampAt(set, way); got != rl.use {
				return mismatch("LRU stamp", got, rl.use)
			}
			if ol.Wear != rl.wear {
				return mismatch("wear", ol.Wear, rl.wear)
			}
		}
	}
	if opt.Stats != ref.stats {
		return fmt.Errorf("%s: %s array stats diverged: optimized %+v, reference %+v",
			ctx, name, opt.Stats, ref.stats)
	}
	return nil
}
