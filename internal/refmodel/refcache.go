// Package refmodel is a deliberately slow, obviously-correct executable
// specification of the simulator's L2 bank organizations — the paper's
// two-part LR/HR bank (Fig. 7 semantics as written down in DESIGN.md §1)
// and the uniform single-technology baseline — plus an invariant checker
// over live bank state and a differential harness that replays
// trace.Record streams into the optimized internal/core banks and this
// reference side by side.
//
// Everything here favors obviousness over speed: plain per-set slices
// instead of SoA slabs, a map instead of the open-addressed MSHR, full
// array scans at every retention boundary instead of the bucketed expiry
// wheel, and a swap buffer that stores every grant explicitly and
// asserts the paper's capacity constraint on itself. Timing and energy
// arithmetic is transcribed from the spec (same formulas, same
// floating-point evaluation order), so a correct optimized bank matches
// the reference bit for bit — including the energy ledger.
package refmodel

import (
	"sttllc/internal/cache"
)

// refLine is one cache line of the reference array. One struct per
// line, no packing.
type refLine struct {
	valid bool
	tag   uint64
	dirty bool
	// wrCount is the paper's saturating write-working-set counter.
	wrCount uint8
	// lastWrite is the cycle of the most recent program write.
	lastWrite int64
	// retStamp is the cycle of the most recent physical array write
	// (program write, fill, or refresh); retention expiry counts from
	// here.
	retStamp int64
	// use is the LRU stamp: assigned from a cache-wide counter on every
	// hit and fill, zeroed on invalidate; the smallest valid stamp in a
	// set is the victim.
	use uint64
	// wear counts physical writes into the slot and survives
	// invalidation.
	wear uint32
}

// refCache is the reference set-associative array. Only LRU replacement
// is specified; the optimized cache's other policies are extensions
// outside the paper.
type refCache struct {
	ways      int
	lineBytes int
	sets      int
	setShift  uint
	tagShift  uint
	lines     [][]refLine // [set][way]
	stamp     uint64
	stats     cache.Stats
	// activeWays bounds allocation (victim selection) when an online
	// reconfiguration narrows the usable associativity; probes still see
	// all ways, exactly like the optimized array.
	activeWays int
}

func log2of(v int) uint {
	n := uint(0)
	for s := 1; s < v; s <<= 1 {
		n++
	}
	return n
}

func newRefCache(capacityBytes, ways, lineBytes int) *refCache {
	sets := capacityBytes / (ways * lineBytes)
	c := &refCache{
		ways:       ways,
		lineBytes:  lineBytes,
		sets:       sets,
		setShift:   log2of(lineBytes),
		tagShift:   log2of(sets),
		lines:      make([][]refLine, sets),
		activeWays: ways,
	}
	for s := range c.lines {
		c.lines[s] = make([]refLine, ways)
	}
	return c
}

func (c *refCache) index(addr uint64) (set int, tag uint64) {
	blk := addr >> c.setShift
	return int(blk & uint64(c.sets-1)), blk >> c.tagShift
}

func (c *refCache) addrOf(set int, tag uint64) uint64 {
	return (tag<<c.tagShift | uint64(set)) << c.setShift
}

func (c *refCache) blockAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.lineBytes) - 1)
}

// probe looks the address up without changing state.
func (c *refCache) probe(addr uint64) (set, way int, hit bool) {
	set, tag := c.index(addr)
	for w := range c.lines[set] {
		if l := &c.lines[set][w]; l.valid && l.tag == tag {
			return set, w, true
		}
	}
	return set, -1, false
}

// accessAt applies hit-side bookkeeping: LRU always; dirty bit, WC
// saturation, last-write and retention stamps, and wear on writes.
func (c *refCache) accessAt(set, way int, write bool, cycle int64) {
	c.stamp++
	l := &c.lines[set][way]
	l.use = c.stamp
	if write {
		c.stats.WriteHits++
		l.dirty = true
		if l.wrCount < 255 {
			l.wrCount++
		}
		l.lastWrite = cycle
		l.retStamp = cycle
		l.wear++
	} else {
		c.stats.ReadHits++
	}
}

// victim picks the way to evict among the active ways: the lowest-index
// invalid way if any, otherwise the valid line with the smallest use
// stamp (lowest way on ties).
func (c *refCache) victim(set int) int {
	for w := 0; w < c.activeWays; w++ {
		if !c.lines[set][w].valid {
			return w
		}
	}
	victim, min := 0, ^uint64(0)
	for w := 0; w < c.activeWays; w++ {
		if c.lines[set][w].use < min {
			min = c.lines[set][w].use
			victim = w
		}
	}
	return victim
}

// refEvicted mirrors cache.Evicted for the reference array.
type refEvicted struct {
	addr  uint64
	dirty bool
}

// fill installs the address (evicting if the set is full), returning
// the displaced line. A fill is a physical write: it stamps retention,
// bumps wear, and initializes WC to 1 for dirty fills.
func (c *refCache) fill(addr uint64, dirty bool, cycle int64) (ev refEvicted, evicted bool) {
	set, tag := c.index(addr)
	way := c.victim(set)
	l := &c.lines[set][way]
	if l.valid {
		ev = refEvicted{addr: c.addrOf(set, l.tag), dirty: l.dirty}
		evicted = true
		c.stats.Evictions++
		if l.dirty {
			c.stats.DirtyEvict++
		}
	}
	c.stamp++
	l.valid = true
	l.tag = tag
	l.dirty = dirty
	l.use = c.stamp
	if dirty {
		l.wrCount = 1
	} else {
		l.wrCount = 0
	}
	l.lastWrite = cycle
	l.retStamp = cycle
	l.wear++
	c.stats.Fills++
	return ev, evicted
}

// invalidateWay removes the line, zeroing all metadata except wear.
func (c *refCache) invalidateWay(set, way int) refEvicted {
	l := &c.lines[set][way]
	if !l.valid {
		return refEvicted{}
	}
	ev := refEvicted{addr: c.addrOf(set, l.tag), dirty: l.dirty}
	l.valid = false
	l.dirty = false
	l.wrCount = 0
	l.lastWrite = 0
	l.retStamp = 0
	l.use = 0
	c.stats.Invalidates++
	return ev
}

// flushDirty visits every dirty line in (set, way) order and cleans it.
func (c *refCache) flushDirty(fn func(addr uint64)) {
	for set := range c.lines {
		for way := range c.lines[set] {
			l := &c.lines[set][way]
			if l.valid && l.dirty {
				fn(c.addrOf(set, l.tag))
				l.dirty = false
			}
		}
	}
}

func (c *refCache) validLines() int {
	n := 0
	for set := range c.lines {
		for way := range c.lines[set] {
			if c.lines[set][way].valid {
				n++
			}
		}
	}
	return n
}
