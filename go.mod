module sttllc

go 1.22
