package sttllc

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its artifact end-to-end (simulator runs included) at
// a reduced scale so `go test -bench=.` finishes in minutes; run the
// cmd/sttexp tool for full-scale numbers.

import (
	"bytes"
	"fmt"
	"testing"

	"sttllc/internal/config"
	"sttllc/internal/experiments"
	"sttllc/internal/ingest"
	"sttllc/internal/sim"
	"sttllc/internal/sttram"
	"sttllc/internal/workloads"
	"sttllc/internal/workloads/gen"
)

// benchParams keeps per-iteration work small: three representative
// benchmarks (one per interesting region), short warps.
func benchParams(benchmarks ...string) experiments.Params {
	if len(benchmarks) == 0 {
		benchmarks = []string{"hotspot", "lud", "nw"}
	}
	return experiments.Params{Scale: 0.05, WarpsPerSM: 6, Benchmarks: benchmarks}
}

func BenchmarkTable1DeviceModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sttram.Table1(256)
		if len(rows) != 3 {
			b.Fatal("Table 1 incomplete")
		}
		_ = sttram.FormatTable1(256)
	}
}

func BenchmarkTable2Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := config.Table2()
		if len(rows) != 5 {
			b.Fatal("Table 2 incomplete")
		}
		_ = config.FormatTable2()
	}
}

func BenchmarkFig3WriteCOV(b *testing.B) {
	p := benchParams("bfs", "stencil")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(p)
		if len(rows) != 2 {
			b.Fatal("Fig 3 incomplete")
		}
	}
}

func BenchmarkFig4ThresholdSweep(b *testing.B) {
	p := benchParams("bfs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4(p, nil)
		if len(rows) != len(experiments.Fig4Thresholds) {
			b.Fatal("Fig 4 incomplete")
		}
	}
}

func BenchmarkFig5Associativity(b *testing.B) {
	p := benchParams("bfs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5(p, nil)
		if len(rows) != len(experiments.Fig5Ways) {
			b.Fatal("Fig 5 incomplete")
		}
	}
}

func BenchmarkFig6RewriteIntervals(b *testing.B) {
	p := benchParams("bfs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(p)
		if len(rows) != 1 || rows[0].Samples == 0 {
			b.Fatal("Fig 6 incomplete")
		}
	}
}

func BenchmarkFig8aSpeedup(b *testing.B) {
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(p)
		if res.GmeanSpeedup["C1"] <= 0 {
			b.Fatal("Fig 8a incomplete")
		}
	}
}

func BenchmarkFig8bDynamicPower(b *testing.B) {
	p := benchParams("stencil")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(p)
		if res.MeanDynPower["baseline-STT"] <= 0 {
			b.Fatal("Fig 8b incomplete")
		}
	}
}

func BenchmarkFig8cTotalPower(b *testing.B) {
	p := benchParams("mum")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(p)
		if res.MeanTotalPower["C1"] <= 0 {
			b.Fatal("Fig 8c incomplete")
		}
	}
}

func BenchmarkAblationVariants(b *testing.B) {
	p := benchParams("bfs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Ablation(p, nil)
		if len(rows) != len(experiments.AblationVariants) {
			b.Fatal("ablation incomplete")
		}
	}
}

func BenchmarkPowerBreakdown(b *testing.B) {
	p := benchParams("bfs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.PowerBreakdown(p, "C1")
		if len(rows) != 1 {
			b.Fatal("power breakdown incomplete")
		}
	}
}

func BenchmarkRetentionSweep(b *testing.B) {
	p := benchParams("bfs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.RetentionSweep(p, nil)
		if len(rows) != len(experiments.RetentionPoints) {
			b.Fatal("retention sweep incomplete")
		}
	}
}

func BenchmarkLRSizeSweep(b *testing.B) {
	p := benchParams("bfs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.LRSizeSweep(p)
		if len(rows) != 3 {
			b.Fatal("LR size sweep incomplete")
		}
	}
}

func BenchmarkReliabilityAnalysis(b *testing.B) {
	p := benchParams("bfs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Reliability(p)
		if len(rows) != 1 {
			b.Fatal("reliability incomplete")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// warp instructions per wall-clock second) on the C1 configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := workloads.ByName("bfs")
	spec = spec.Scale(0.05)
	spec.WarpsPerSM = 6
	cfg := config.C1()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		r := sim.RunOne(cfg, spec, sim.Options{})
		instrs += r.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkSimulatorThroughputL3 is the same measurement on the
// two-tier C2-L3 stack, so the cost of hierarchy chaining is tracked
// next to the single-tier row (which is the one CI gates).
func BenchmarkSimulatorThroughputL3(b *testing.B) {
	spec, _ := workloads.ByName("bfs")
	spec = spec.Scale(0.05)
	spec.WarpsPerSM = 6
	cfg, ok := config.ByName("C2-L3")
	if !ok {
		b.Fatal("C2-L3 configuration missing")
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		r := sim.RunOne(cfg, spec, sim.Options{})
		instrs += r.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkSimulatorThroughputAdaptive is the same measurement with the
// C4 reconfiguration controller live, so the controller's epoch-event
// cost is tracked next to the static rows. This row is informational
// (not in the CI gate set); the gated single-tier row above is what
// proves a disabled controller costs nothing — the disabled path
// constructs no controller and schedules no epoch events.
func BenchmarkSimulatorThroughputAdaptive(b *testing.B) {
	spec, _ := workloads.ByName("bfs")
	spec = spec.Scale(0.05)
	spec.WarpsPerSM = 6
	cfg := config.C4()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		r := sim.RunOne(cfg, spec, sim.Options{})
		instrs += r.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// benchNDJSON synthesizes an sttllc-trace/v1 NDJSON stream of the given
// length, the external format POST /v1/traces and stttrace -import
// accept. Deterministic so every iteration parses identical bytes.
func benchNDJSON(records int) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\"format\":\"sttllc-trace/v1\",\"workload\":\"bench\",\"line_bytes\":256,\"sms\":15,\"end_cycle\":%d}\n", records*2)
	for i := 0; i < records; i++ {
		op := "R"
		if i%3 == 0 {
			op = "W"
		}
		fmt.Fprintf(&buf, "{\"cycle\":%d,\"addr\":%d,\"op\":%q,\"sm\":%d}\n",
			i*2, (i*2933)%(1<<20)*256, op, i%15)
	}
	return buf.Bytes()
}

// BenchmarkTraceImportNDJSON measures ingestion throughput of the
// external NDJSON trace format: parse, validate, delta-encode, and
// content-hash 10k access records — the full cost of one upload.
func BenchmarkTraceImportNDJSON(b *testing.B) {
	const records = 10000
	blob := benchNDJSON(records)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := ingest.Import(bytes.NewReader(blob), ingest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Records) != records {
			b.Fatalf("imported %d records, want %d", len(rec.Records), records)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkWorkloadGenFamily measures the parametric generator: draw a
// 32-member family (sample every distribution, derive kernels, content-
// hash each member) — the per-request cost of a gen-spec sweep.
func BenchmarkWorkloadGenFamily(b *testing.B) {
	instr, warps := 200.0, 4.0
	family := gen.FamilySpec{
		AppSpec: gen.AppSpec{
			Name:         "bench",
			Seed:         42,
			Kernels:      gen.Dist{Min: 1, Max: 4},
			MemFrac:      gen.Dist{Min: 0.1, Max: 0.5},
			WriteFrac:    gen.Dist{Min: 0, Max: 0.6},
			FootprintKB:  gen.Dist{Min: 256, Max: 4096, Log: true},
			InstrPerWarp: gen.Dist{Fixed: &instr},
			WarpsPerSM:   gen.Dist{Fixed: &warps},
		},
		Count: 32,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apps, err := family.Apps()
		if err != nil {
			b.Fatal(err)
		}
		if len(apps) != 32 {
			b.Fatalf("drew %d members, want 32", len(apps))
		}
	}
	b.ReportMetric(32*float64(b.N)/b.Elapsed().Seconds(), "apps/s")
}

func BenchmarkWearLeveling(b *testing.B) {
	p := benchParams("bfs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.WearLeveling(p)
		if len(rows) != 1 {
			b.Fatal("wear leveling incomplete")
		}
	}
}
